package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// graphInput compactly describes a random network for testing/quick.
type graphInput struct {
	Seed int64
	N    uint8
	Het  bool
}

func (in graphInput) nodes() []Node {
	n := int(in.N)%120 + 2
	rng := rand.New(rand.NewSource(in.Seed))
	nodes := make([]Node, n)
	for i := range nodes {
		r := 1.0
		if in.Het {
			r = 1 + rng.Float64()
		}
		nodes[i] = Node{ID: i, Pos: geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5), Radius: r}
	}
	return nodes
}

// Property: bidirectional adjacency is symmetric.
func TestQuickBidirectionalSymmetry(t *testing.T) {
	f := func(in graphInput) bool {
		g, err := Build(in.nodes(), Bidirectional)
		if err != nil {
			return false
		}
		for u := 0; u < g.Len(); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.IsNeighbor(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: in- and out-neighbor sets coincide under the bidirectional
// model and are transposes under the unidirectional model.
func TestQuickInOutConsistency(t *testing.T) {
	f := func(in graphInput) bool {
		nodes := in.nodes()
		gb, err := Build(nodes, Bidirectional)
		if err != nil {
			return false
		}
		for u := 0; u < gb.Len(); u++ {
			if !equalIntSlices(gb.Neighbors(u), gb.InNeighbors(u)) {
				return false
			}
		}
		gu, err := Build(nodes, Unidirectional)
		if err != nil {
			return false
		}
		for u := 0; u < gu.Len(); u++ {
			for _, v := range gu.Neighbors(u) {
				found := false
				for _, w := range gu.InNeighbors(v) {
					if w == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: TwoHop is disjoint from the closed 1-hop neighborhood and every
// 2-hop node is adjacent to some 1-hop neighbor.
func TestQuickTwoHopStructure(t *testing.T) {
	f := func(in graphInput) bool {
		g, err := Build(in.nodes(), Bidirectional)
		if err != nil {
			return false
		}
		for u := 0; u < g.Len(); u++ {
			one := make(map[int]bool, g.Degree(u))
			one[u] = true
			for _, v := range g.Neighbors(u) {
				one[v] = true
			}
			for _, w := range g.TwoHop(u) {
				if one[w] {
					return false
				}
				viaNeighbor := false
				for _, v := range g.Neighbors(u) {
					if g.IsNeighbor(v, w) {
						viaNeighbor = true
						break
					}
				}
				if !viaNeighbor {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the edge relaxation inequality
// |d(u) − d(v)| ≤ 1 for every bidirectional edge with both ends reachable,
// and TwoHop(u) is exactly the distance-2 shell of u.
func TestQuickHopDistanceConsistency(t *testing.T) {
	f := func(in graphInput) bool {
		g, err := Build(in.nodes(), Bidirectional)
		if err != nil {
			return false
		}
		d := g.HopDistances(0)
		for u := 0; u < g.Len(); u++ {
			for _, v := range g.Neighbors(u) {
				if d[u] >= 0 && d[v] >= 0 {
					diff := d[u] - d[v]
					if diff < -1 || diff > 1 {
						return false
					}
				}
				if (d[u] >= 0) != (d[v] >= 0) {
					return false // reachability is component-wide
				}
			}
		}
		du := g.HopDistances(1 % g.Len())
		src := 1 % g.Len()
		twoSet := make(map[int]bool)
		for _, w := range g.TwoHop(src) {
			twoSet[w] = true
		}
		for v := 0; v < g.Len(); v++ {
			if (du[v] == 2) != twoSet[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the LocalSet derived from any node of a bidirectional graph
// validates (the graph construction enforces the mutual-containment
// conditions).
func TestQuickLocalSetAlwaysValid(t *testing.T) {
	f := func(in graphInput) bool {
		g, err := Build(in.nodes(), Bidirectional)
		if err != nil {
			return false
		}
		for u := 0; u < g.Len(); u++ {
			ls, ids, err := g.LocalSet(u)
			if err != nil {
				return false
			}
			if len(ids) != g.Degree(u) {
				return false
			}
			if err := ls.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
