package network

import "sort"

// The paper (§5.1) assumes nodes learn their neighborhoods from periodic
// HELLO beacons: a first round of beacons carrying (id, position, radius)
// yields 1-hop tables, and a second round in which each beacon piggybacks
// the sender's 1-hop neighbor list yields 2-hop tables. This file
// simulates that discovery process over the reception (unidirectional)
// edges so the information each node ends up with is exactly what the
// physical process would deliver — including the asymmetries that motivate
// the paper's Figure 5.6 discussion.

// NeighborTable is the local view a node builds from HELLO beacons.
type NeighborTable struct {
	// OneHop lists the bidirectional 1-hop neighbors: nodes the owner
	// heard and that also heard the owner (learned from the second-round
	// beacon, which tells the owner whether it appears in the sender's
	// list). Sorted.
	OneHop []int
	// TwoHop lists the nodes at distance exactly two through OneHop
	// members, learned from the piggybacked neighbor lists. Sorted.
	TwoHop []int
	// Heard lists every node whose first-round beacon arrived, i.e. the
	// in-neighbors regardless of symmetry. Sorted.
	Heard []int
}

// DiscoverNeighborhoods simulates the two HELLO rounds for every node and
// returns the per-node tables. The graph must have been built with the
// Unidirectional model to expose asymmetric links faithfully; with the
// Bidirectional model the result reduces to the graph's own adjacency.
func DiscoverNeighborhoods(g *Graph) []NeighborTable {
	n := g.Len()
	tables := make([]NeighborTable, n)

	// Round 1: every node beacons; receivers record who they heard.
	for u := 0; u < n; u++ {
		heard := g.InNeighbors(u)
		tables[u].Heard = append([]int(nil), heard...)
	}

	// Round 2: every node beacons its heard-list. A receiver u that hears
	// v and finds itself in v's list concludes the link u–v is
	// bidirectional. It also learns v's bidirectional neighbors as 2-hop
	// candidates.
	heardSet := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		heardSet[u] = make(map[int]bool, len(tables[u].Heard))
		for _, v := range tables[u].Heard {
			heardSet[u][v] = true
		}
	}
	for u := 0; u < n; u++ {
		var one []int
		for _, v := range tables[u].Heard {
			if heardSet[v][u] {
				one = append(one, v)
			}
		}
		sort.Ints(one)
		tables[u].OneHop = one
	}
	for u := 0; u < n; u++ {
		mark := map[int]bool{u: true}
		for _, v := range tables[u].OneHop {
			mark[v] = true
		}
		var two []int
		for _, v := range tables[u].OneHop {
			for _, w := range tables[v].OneHop {
				if !mark[w] {
					mark[w] = true
					two = append(two, w)
				}
			}
		}
		sort.Ints(two)
		tables[u].TwoHop = two
	}
	return tables
}
