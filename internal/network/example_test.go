package network_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/network"
)

// Building a heterogeneous disk graph: node 0's big radius cannot create a
// link to node 2, whose small radius cannot reach back (bidirectional
// model).
func ExampleBuild() {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 3},
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 2},
		{ID: 2, Pos: geom.Pt(1.8, 0), Radius: 1},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		panic(err)
	}
	fmt.Println("neighbors of 0:", g.Neighbors(0))
	fmt.Println("neighbors of 2:", g.Neighbors(2))

	// Under the unidirectional (reception) model node 2 does hear node 0.
	gu, err := network.Build(nodes, network.Unidirectional)
	if err != nil {
		panic(err)
	}
	fmt.Println("who reaches 2:", gu.InNeighbors(2))
	// Output:
	// neighbors of 0: [1]
	// neighbors of 2: [1]
	// who reaches 2: [0 1]
}

// MoveNode patches the adjacency incrementally when a node relocates.
func ExampleGraph_MoveNode() {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1.2},
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 1.2},
		{ID: 2, Pos: geom.Pt(5, 0), Radius: 1.2},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		panic(err)
	}
	fmt.Println("before:", g.Neighbors(2))
	if err := g.MoveNode(2, geom.Pt(2, 0)); err != nil {
		panic(err)
	}
	fmt.Println("after: ", g.Neighbors(2))
	// Output:
	// before: []
	// after:  [1]
}
