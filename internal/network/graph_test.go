package network

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// lineNodes builds nodes on the x-axis at the given positions with the
// given radii.
func lineNodes(xs, rs []float64) []Node {
	nodes := make([]Node, len(xs))
	for i := range xs {
		nodes[i] = Node{ID: i, Pos: geom.Pt(xs[i], 0), Radius: rs[i]}
	}
	return nodes
}

func TestBuildBidirectional(t *testing.T) {
	// Nodes at 0, 1, 3 with radii 1.5, 1.5, 1.5: links 0–1 only (1–2 at
	// distance 2 > 1.5).
	g, err := Build(lineNodes([]float64{0, 1, 3}, []float64{1.5, 1.5, 1.5}), Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsNeighbor(0, 1) || !g.IsNeighbor(1, 0) {
		t.Error("0 and 1 must be neighbors")
	}
	if g.IsNeighbor(1, 2) || g.IsNeighbor(0, 2) {
		t.Error("2 is isolated")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees: %d, %d", g.Degree(0), g.Degree(2))
	}
}

func TestBidirectionalRequiresMutualRange(t *testing.T) {
	// Node 0 has a big radius, node 1 a small one: 0 reaches 1 but 1
	// cannot reach back, so under the bidirectional model there is NO link.
	g, err := Build(lineNodes([]float64{0, 2}, []float64{3, 1}), Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if g.IsNeighbor(0, 1) || g.IsNeighbor(1, 0) {
		t.Error("asymmetric ranges must yield no bidirectional link")
	}
	// Under the unidirectional model, 0 → 1 exists but not 1 → 0.
	gu, err := Build(lineNodes([]float64{0, 2}, []float64{3, 1}), Unidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if !gu.IsNeighbor(0, 1) {
		t.Error("0 → 1 reception edge must exist")
	}
	if gu.IsNeighbor(1, 0) {
		t.Error("1 → 0 must not exist")
	}
	in := gu.InNeighbors(1)
	if len(in) != 1 || in[0] != 0 {
		t.Errorf("InNeighbors(1) = %v", in)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]Node{{ID: 5, Pos: geom.Pt(0, 0), Radius: 1}}, Bidirectional); err == nil {
		t.Error("non-dense IDs must fail")
	}
	if _, err := Build([]Node{{ID: 0, Pos: geom.Pt(0, 0), Radius: 0}}, Bidirectional); err == nil {
		t.Error("zero radius must fail")
	}
	g, err := Build(nil, Bidirectional)
	if err != nil || g.Len() != 0 {
		t.Error("empty graph must build")
	}
}

func TestTwoHop(t *testing.T) {
	// Chain 0–1–2–3 with unit spacing and radius 1.2 (links only between
	// consecutive nodes).
	g, err := Build(lineNodes([]float64{0, 1, 2, 3}, []float64{1.2, 1.2, 1.2, 1.2}), Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TwoHop(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("TwoHop(0) = %v, want [2]", got)
	}
	if got := g.TwoHop(1); len(got) != 1 || got[0] != 3 {
		t.Errorf("TwoHop(1) = %v, want [3]", got)
	}
	if got := g.TwoHop(3); len(got) != 1 || got[0] != 1 {
		t.Errorf("TwoHop(3) = %v, want [1]", got)
	}
}

func TestHopDistancesAndReachable(t *testing.T) {
	g, err := Build(lineNodes([]float64{0, 1, 2, 10}, []float64{1.2, 1.2, 1.2, 1.2}), Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	d := g.HopDistances(0)
	want := []int{0, 1, 2, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if got := g.ReachableCount(0); got != 3 {
		t.Errorf("ReachableCount = %d, want 3", got)
	}
}

func TestBuildMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(150)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = Node{
				ID:     i,
				Pos:    geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5),
				Radius: 1 + rng.Float64(),
			}
		}
		for _, model := range []LinkModel{Bidirectional, Unidirectional} {
			g, err := Build(nodes, model)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < n; u++ {
				var want []int
				for v := 0; v < n; v++ {
					if v == u {
						continue
					}
					d := nodes[u].Pos.Dist(nodes[v].Pos)
					ok := d <= nodes[u].Radius+geom.Eps
					if model == Bidirectional {
						ok = ok && d <= nodes[v].Radius+geom.Eps
					}
					if ok {
						want = append(want, v)
					}
				}
				got := g.Neighbors(u)
				if len(got) != len(want) {
					t.Fatalf("trial %d %v: node %d neighbors %v, want %v", trial, model, u, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d %v: node %d neighbors %v, want %v", trial, model, u, got, want)
					}
				}
			}
		}
	}
}

func TestLocalSetMapping(t *testing.T) {
	g, err := Build(lineNodes([]float64{0, 1, -1}, []float64{1.5, 1.5, 1.5}), Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	ls, ids, err := g.LocalSet(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Validate(); err != nil {
		t.Fatalf("graph-derived local set must validate: %v", err)
	}
	if len(ids) != 2 {
		t.Fatalf("neighbor IDs = %v", ids)
	}
	for i, id := range ids {
		if !ls.Neighbors[i].C.Eq(g.Node(id).Pos) {
			t.Errorf("neighbor disk %d does not match node %d", i, id)
		}
	}
	gu, _ := Build(lineNodes([]float64{0, 1}, []float64{1.5, 1.5}), Unidirectional)
	if _, _, err := gu.LocalSet(0); err == nil {
		t.Error("LocalSet must require the bidirectional model")
	}
}

func TestModelString(t *testing.T) {
	if Bidirectional.String() != "bidirectional" || Unidirectional.String() != "unidirectional" {
		t.Error("LinkModel.String mismatch")
	}
}

func TestDiscoverNeighborhoods(t *testing.T) {
	// The paper's Figure 5.6 asymmetry: u3 reaches u4 but u4 cannot reach
	// back, so u4 must not appear in u3's OneHop but does appear in Heard
	// of u4... Build a 3-node instance: a–b bidirectional, c hears a only.
	nodes := []Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 3},   // a: big radius
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 2},   // b: mutual with a
		{ID: 2, Pos: geom.Pt(2.5, 0), Radius: 1}, // c: hears a (2.5 ≤ 3) but a is out of c's range
	}
	g, err := Build(nodes, Unidirectional)
	if err != nil {
		t.Fatal(err)
	}
	tables := DiscoverNeighborhoods(g)
	// c heard a (distance 2.5 ≤ r_a=3) and b (1.5 ≤ r_b=2).
	if got := tables[2].Heard; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("c.Heard = %v, want [0 1]", got)
	}
	// c's beacons reach distance 1 only: nobody hears c, so c has no
	// bidirectional neighbors.
	if len(tables[2].OneHop) != 0 {
		t.Errorf("c.OneHop = %v, want empty", tables[2].OneHop)
	}
	// a and b are mutual.
	if got := tables[0].OneHop; len(got) != 1 || got[0] != 1 {
		t.Errorf("a.OneHop = %v, want [1]", got)
	}
	if got := tables[1].OneHop; len(got) != 1 || got[0] != 0 {
		t.Errorf("b.OneHop = %v, want [0]", got)
	}
	if len(tables[0].TwoHop) != 0 {
		t.Errorf("a.TwoHop = %v, want empty", tables[0].TwoHop)
	}
}

// The HELLO-derived tables must agree with the bidirectional graph's
// adjacency and TwoHop when links are symmetric.
func TestDiscoverMatchesBidirectionalGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(100)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = Node{
				ID:     i,
				Pos:    geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5),
				Radius: 1 + rng.Float64(),
			}
		}
		gu, err := Build(nodes, Unidirectional)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := Build(nodes, Bidirectional)
		if err != nil {
			t.Fatal(err)
		}
		tables := DiscoverNeighborhoods(gu)
		for u := 0; u < n; u++ {
			if !equalIntSlices(tables[u].OneHop, gb.Neighbors(u)) {
				t.Fatalf("node %d: HELLO OneHop %v != graph %v", u, tables[u].OneHop, gb.Neighbors(u))
			}
			if !equalIntSlices(tables[u].TwoHop, gb.TwoHop(u)) {
				t.Fatalf("node %d: HELLO TwoHop %v != graph %v", u, tables[u].TwoHop, gb.TwoHop(u))
			}
		}
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if !sort.IntsAreSorted(a) || !sort.IntsAreSorted(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
