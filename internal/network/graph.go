// Package network models heterogeneous wireless ad hoc networks as disk
// graphs (§3.1 of the paper): every node has a position and a transmission
// radius, and links are induced by geometry. Both the paper's bidirectional
// link model (u ~ v iff ‖u − v‖ ≤ min(r_u, r_v)) and the physical
// unidirectional reception model (v hears u iff ‖u − v‖ ≤ r_u) are
// supported; the latter is used by the broadcast simulator to model what
// actually propagates over the air.
package network

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/mldcs"
	"repro/internal/spatial"
)

// Node is a wireless node: an identifier, a position, and a transmission
// radius.
type Node struct {
	ID     int
	Pos    geom.Point
	Radius float64
}

// Disk returns the node's coverage disk B(Pos, Radius).
func (n Node) Disk() geom.Disk { return geom.Disk{C: n.Pos, R: n.Radius} }

// LinkModel selects how links are derived from geometry.
type LinkModel int

const (
	// Bidirectional links exist iff each endpoint is within the other's
	// radius: ‖u − v‖ ≤ min(r_u, r_v). This is the paper's model.
	Bidirectional LinkModel = iota
	// Unidirectional links are reception edges: u → v iff ‖u − v‖ ≤ r_u.
	// The resulting graph is directed.
	Unidirectional
)

// String implements fmt.Stringer.
func (m LinkModel) String() string {
	if m == Bidirectional {
		return "bidirectional"
	}
	return "unidirectional"
}

// Graph is a disk graph over a fixed node set.
type Graph struct {
	nodes []Node
	model LinkModel
	out   [][]int // out[u] = sorted neighbors reachable BY u's transmissions
	in    [][]int // in[u] = sorted nodes whose transmissions reach u
	grid  *spatial.Grid
	maxR  float64
}

// Build constructs the disk graph for the nodes under the given link
// model. Node IDs must equal their slice positions; Build verifies this.
// Construction uses a spatial grid, so it is near-linear in the number of
// nodes for bounded densities.
func Build(nodes []Node, model LinkModel) (*Graph, error) {
	maxR := 0.0
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("network: node at position %d has ID %d; IDs must be dense", i, n.ID)
		}
		if !(n.Radius > 0) {
			return nil, fmt.Errorf("network: node %d has non-positive radius %g", i, n.Radius)
		}
		if n.Radius > maxR {
			maxR = n.Radius
		}
	}
	g := &Graph{
		// Copy: MoveNode mutates positions, and the caller's slice must
		// stay untouched.
		nodes: append([]Node(nil), nodes...),
		model: model,
		out:   make([][]int, len(nodes)),
		in:    make([][]int, len(nodes)),
	}
	if len(nodes) == 0 {
		return g, nil
	}
	pts := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = n.Pos
	}
	grid := spatial.NewGrid(pts, maxR)
	g.grid = grid
	g.maxR = maxR
	for u := range nodes {
		grid.VisitWithin(nodes[u].Pos, nodes[u].Radius, func(v int) {
			if v == u {
				return
			}
			if model == Bidirectional && !geom.Reaches(nodes[v].Pos, nodes[u].Pos, nodes[v].Radius) {
				return // v cannot reach back
			}
			g.out[u] = append(g.out[u], v)
			g.in[v] = append(g.in[v], u)
		})
	}
	for u := range nodes {
		sort.Ints(g.out[u])
		sort.Ints(g.in[u])
	}
	return g, nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Model returns the link model the graph was built with.
func (g *Graph) Model() LinkModel { return g.model }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Nodes returns the underlying node slice. Callers must not modify it.
func (g *Graph) Nodes() []Node { return g.nodes }

// Neighbors returns the out-neighbors of u: the nodes u's transmissions
// reach. Under the bidirectional model this equals the in-neighbor set.
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(u int) []int { return g.out[u] }

// InNeighbors returns the nodes whose transmissions reach u.
func (g *Graph) InNeighbors(u int) []int { return g.in[u] }

// Degree returns the out-degree of u.
func (g *Graph) Degree(u int) int { return len(g.out[u]) }

// IsNeighbor reports whether v is an out-neighbor of u.
func (g *Graph) IsNeighbor(u, v int) bool {
	adj := g.out[u]
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// TwoHop returns the nodes at graph distance exactly 2 from u (reachable
// via out-edges), sorted.
func (g *Graph) TwoHop(u int) []int {
	mark := make(map[int]bool, 4*len(g.out[u]))
	mark[u] = true
	for _, v := range g.out[u] {
		mark[v] = true
	}
	var out []int
	for _, v := range g.out[u] {
		for _, w := range g.out[v] {
			if !mark[w] {
				mark[w] = true
				out = append(out, w)
			}
		}
	}
	sort.Ints(out)
	return out
}

// HopDistances returns BFS hop counts over out-edges from src; unreachable
// nodes get −1.
func (g *Graph) HopDistances(src int) []int {
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= len(g.nodes) {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.out[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ReachableCount returns the number of nodes reachable from src (including
// src itself).
func (g *Graph) ReachableCount(src int) int {
	c := 0
	for _, d := range g.HopDistances(src) {
		if d >= 0 {
			c++
		}
	}
	return c
}

// LocalSet returns the MLDCS problem input for node u: the hub's disk and
// the disks of its bidirectional 1-hop neighbors, plus the mapping from
// neighbor-disk positions to node IDs. It requires the bidirectional
// model, under which every neighbor's disk contains the hub by definition.
func (g *Graph) LocalSet(u int) (ls mldcs.LocalSet, neighborIDs []int, err error) {
	if g.model != Bidirectional {
		return mldcs.LocalSet{}, nil, fmt.Errorf("network: LocalSet requires the bidirectional model")
	}
	ls.Hub = g.nodes[u].Disk()
	neighborIDs = g.out[u]
	ls.Neighbors = make([]geom.Disk, len(neighborIDs))
	for i, v := range neighborIDs {
		ls.Neighbors[i] = g.nodes[v].Disk()
	}
	return ls, neighborIDs, nil
}
