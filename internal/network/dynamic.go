package network

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Dynamic topology maintenance: MoveNode relocates one node and patches
// the adjacency incrementally instead of rebuilding the whole graph —
// the natural operation for mobile ad hoc networks, where one HELLO
// interval typically moves a few nodes a short distance. The cost is
// O(candidates + degree) per move versus O(n·degree) for a rebuild.

// MoveNode relocates node u to pos and updates all affected adjacency
// lists. The node's radius is unchanged. The graph must have been built
// by Build (which records the spatial index).
func (g *Graph) MoveNode(u int, pos geom.Point) error {
	if u < 0 || u >= len(g.nodes) {
		return fmt.Errorf("network: node %d out of range [0, %d)", u, len(g.nodes))
	}
	if g.grid == nil {
		return fmt.Errorf("network: graph has no spatial index (zero-node graph?)")
	}

	// Detach u from its current neighbors' lists.
	for _, v := range g.out[u] {
		g.in[v] = removeSorted(g.in[v], u)
	}
	for _, v := range g.in[u] {
		g.out[v] = removeSorted(g.out[v], u)
	}
	g.out[u] = g.out[u][:0]
	g.in[u] = g.in[u][:0]

	// Relocate.
	g.nodes[u].Pos = pos
	g.grid.Move(u, pos)

	// Recompute u's edges. Out-edges: nodes within u's radius (mutual
	// range under the bidirectional model). In-edges: nodes whose radius
	// reaches u; candidates come from a maxR query.
	self := g.nodes[u]
	g.grid.VisitWithin(pos, g.maxR, func(v int) {
		if v == u {
			return
		}
		d := pos.Dist(g.nodes[v].Pos)
		uReaches := geom.LinkWithin(d, self.Radius)
		vReaches := geom.LinkWithin(d, g.nodes[v].Radius)
		if g.model == Bidirectional {
			if uReaches && vReaches {
				g.out[u] = append(g.out[u], v)
				g.out[v] = insertSorted(g.out[v], u)
				g.in[u] = append(g.in[u], v)
				g.in[v] = insertSorted(g.in[v], u)
			}
			return
		}
		if uReaches {
			g.out[u] = append(g.out[u], v)
			g.in[v] = insertSorted(g.in[v], u)
		}
		if vReaches {
			g.in[u] = append(g.in[u], v)
			g.out[v] = insertSorted(g.out[v], u)
		}
	})
	sort.Ints(g.out[u])
	sort.Ints(g.in[u])
	return nil
}

// removeSorted deletes x from a sorted slice, preserving order.
func removeSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// insertSorted inserts x into a sorted slice if absent, preserving order.
func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}
