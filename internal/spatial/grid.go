// Package spatial provides a uniform-grid spatial index used to build disk
// graphs in near-linear time: each point is hashed to a square cell, and a
// radius query scans only the cells overlapping the query disk instead of
// every point.
package spatial

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Grid is a uniform-cell spatial hash over a fixed set of points.
type Grid struct {
	cell  float64
	pts   []geom.Point
	cells map[cellKey][]int
}

type cellKey struct{ x, y int }

// NewGrid indexes the points with the given cell size. A good cell size is
// the typical query radius; it must be positive.
func NewGrid(pts []geom.Point, cell float64) *Grid {
	if !(cell > 0) {
		panic("spatial: cell size must be positive")
	}
	g := &Grid{
		cell:  cell,
		pts:   append([]geom.Point(nil), pts...),
		cells: make(map[cellKey][]int, len(pts)),
	}
	for i, p := range pts {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *Grid) key(p geom.Point) cellKey {
	return cellKey{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// CellCoord returns the integer coordinates of the grid cell currently
// holding point i — the same key Cells() partitions and sorts by. Callers
// use it to group points by owning cell without materializing Cells().
func (g *Grid) CellCoord(i int) (x, y int) {
	if i < 0 || i >= len(g.pts) {
		panic("spatial: index out of range")
	}
	k := g.key(g.pts[i])
	return k.x, k.y
}

// Move relocates point i to p, updating the index. The grid stores its
// own copy of the coordinates, so the caller's slice is not modified.
func (g *Grid) Move(i int, p geom.Point) {
	if i < 0 || i >= len(g.pts) {
		panic("spatial: index out of range")
	}
	old := g.key(g.pts[i])
	g.pts[i] = p
	nk := g.key(p)
	if old == nk {
		return
	}
	cell := g.cells[old]
	for j, idx := range cell {
		if idx == i {
			cell[j] = cell[len(cell)-1]
			cell = cell[:len(cell)-1]
			break
		}
	}
	if len(cell) == 0 {
		delete(g.cells, old)
	} else {
		g.cells[old] = cell
	}
	g.cells[nk] = append(g.cells[nk], i)
}

// Cells returns the occupied grid cells as slices of point indices, in a
// deterministic order (sorted by cell coordinates). Together the slices
// partition [0, Len()), which makes them natural shards for whole-index
// passes: nearby points share a cell, so per-cell work has good locality.
// The inner slices alias the grid's internal storage — callers must not
// modify them, and Move invalidates them.
func (g *Grid) Cells() [][]int {
	keys := make([]cellKey, 0, len(g.cells))
	for k := range g.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].y < keys[j].y
	})
	out := make([][]int, len(keys))
	for i, k := range keys {
		out[i] = g.cells[k]
	}
	return out
}

// Within returns the indices of all points p with ‖p − q‖ ≤ radius
// (accepting boundary points the way geom.LinkWithin does), in
// unspecified order.
func (g *Grid) Within(q geom.Point, radius float64) []int {
	var out []int
	g.VisitWithin(q, radius, func(i int) {
		out = append(out, i)
	})
	return out
}

// VisitWithin calls fn for every point within radius of q. The distance
// filter is geom.LinkWithin2 — the squared image of the canonical link
// predicate — so a grid query accepts exactly the points a linear-space
// ‖p − q‖ ≤ radius check (geom.LinkWithin) would. It allocates nothing
// beyond what fn does, making it suitable for hot loops.
func (g *Grid) VisitWithin(q geom.Point, radius float64, fn func(i int)) {
	if radius < 0 {
		return
	}
	// The cell window must cover the tolerant acceptance disk of radius
	// radius+Eps, or a boundary point sitting just across a cell border
	// would pass the distance filter but never be scanned.
	reach := radius + geom.Eps
	x0 := int(math.Floor((q.X - reach) / g.cell))
	x1 := int(math.Floor((q.X + reach) / g.cell))
	y0 := int(math.Floor((q.Y - reach) / g.cell))
	y1 := int(math.Floor((q.Y + reach) / g.cell))
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			for _, i := range g.cells[cellKey{x, y}] {
				if geom.LinkWithin2(g.pts[i].Dist2(q), radius) {
					fn(i)
				}
			}
		}
	}
}
