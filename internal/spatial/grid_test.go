package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestWithinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5)
		}
		g := NewGrid(pts, 0.5+rng.Float64()*2)
		for q := 0; q < 20; q++ {
			center := geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5)
			radius := rng.Float64() * 3
			got := g.Within(center, radius)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if p.Dist(center) <= radius+geom.Eps {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: Within returned %d points, brute force %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Within = %v, want %v", trial, got, want)
				}
			}
		}
	}
}

func TestWithinEdgeCases(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}
	g := NewGrid(pts, 1)
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	// Radius 0 returns only coincident points.
	got := g.Within(geom.Pt(0, 0), 0)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("radius-0 query = %v", got)
	}
	// Negative radius returns nothing.
	if got := g.Within(geom.Pt(0, 0), -1); got != nil {
		t.Errorf("negative-radius query = %v", got)
	}
	// Boundary inclusion: a point exactly at distance radius is included.
	got = g.Within(geom.Pt(0, 0), 1)
	if len(got) != 3 {
		t.Errorf("unit query = %v, want all 3", got)
	}
}

// TestWithinBoundaryDistanceAgreesWithLinkPredicate is the regression
// test for the squared-space epsilon bug: the grid filter used to compare
// Dist² against r²+Eps, while the link layer compares Dist against r+Eps.
// Since (r+Eps)² ≈ r² + 2rEps, the old filter was stricter for r > 0.5
// and dropped true boundary neighbors — e.g. a point at distance r+Eps/2
// of a radius-5 query. The grid must now accept exactly the points
// geom.LinkWithin accepts, at every radius scale.
func TestWithinBoundaryDistanceAgreesWithLinkPredicate(t *testing.T) {
	for _, r := range []float64{0.25, 1, 2, 5, 100} {
		center := geom.Pt(0, 0)
		offsets := []struct {
			name string
			dx   float64
			want bool
		}{
			{"exactly-r", r, true},
			{"r-minus-half-eps", r - geom.Eps/2, true},
			{"r-plus-half-eps", r + geom.Eps/2, true}, // dropped by the old filter for r ≥ 1
			{"r-plus-2eps", r + 2*geom.Eps, false},
		}
		pts := make([]geom.Point, len(offsets))
		for i, o := range offsets {
			pts[i] = geom.Pt(o.dx, 0)
		}
		g := NewGrid(pts, r)
		got := make(map[int]bool)
		for _, i := range g.Within(center, r) {
			got[i] = true
		}
		for i, o := range offsets {
			if lin := geom.LinkWithin(pts[i].Dist(center), r); lin != o.want {
				t.Fatalf("r=%g %s: test premise broken, LinkWithin = %v", r, o.name, lin)
			}
			if got[i] != o.want {
				t.Errorf("r=%g: point at %s in grid result = %v, want %v (link predicate)",
					r, o.name, got[i], o.want)
			}
		}
	}
}

func TestEmptyGrid(t *testing.T) {
	g := NewGrid(nil, 1)
	if g.Len() != 0 {
		t.Errorf("Len = %d", g.Len())
	}
	if got := g.Within(geom.Pt(0, 0), 10); got != nil {
		t.Errorf("query on empty grid = %v", got)
	}
}

func TestBadCellSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive cell size")
		}
	}()
	NewGrid(nil, 0)
}

func TestMoveMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	g := NewGrid(pts, 1)
	for step := 0; step < 200; step++ {
		i := rng.Intn(len(pts))
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		g.Move(i, pts[i])
	}
	fresh := NewGrid(pts, 1)
	for q := 0; q < 30; q++ {
		center := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		radius := rng.Float64() * 3
		a := g.Within(center, radius)
		b := fresh.Within(center, radius)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("moved grid answers %d, fresh %d", len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("moved grid %v, fresh %v", a, b)
			}
		}
	}
}

func TestMoveDoesNotMutateCaller(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0)}
	g := NewGrid(pts, 1)
	g.Move(0, geom.Pt(5, 5))
	if pts[0] != geom.Pt(0, 0) {
		t.Error("Move must not mutate the caller's point slice")
	}
	if got := g.Within(geom.Pt(5, 5), 0.1); len(got) != 1 {
		t.Errorf("moved point not found: %v", got)
	}
}

func TestMoveOutOfRangePanics(t *testing.T) {
	g := NewGrid([]geom.Point{{}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Move(5, geom.Pt(1, 1))
}

func TestNegativeCoordinates(t *testing.T) {
	pts := []geom.Point{geom.Pt(-5, -5), geom.Pt(-4.5, -5), geom.Pt(5, 5)}
	g := NewGrid(pts, 1)
	got := g.Within(geom.Pt(-5, -5), 0.6)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("negative-coordinate query = %v, want [0 1]", got)
	}
}

// TestCellCoordMatchesCells pins CellCoord against the partition Cells()
// exposes: every point's reported cell must be shared with exactly the
// points of one Cells() slice, and Move must be reflected immediately.
func TestCellCoordMatchesCells(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*12.5-3, rng.Float64()*12.5-3)
	}
	g := NewGrid(pts, 1.25)
	type coord struct{ x, y int }
	byCoord := make(map[coord][]int)
	for i := range pts {
		x, y := g.CellCoord(i)
		byCoord[coord{x, y}] = append(byCoord[coord{x, y}], i)
	}
	cells := g.Cells()
	if len(cells) != len(byCoord) {
		t.Fatalf("CellCoord groups into %d cells, Cells() has %d", len(byCoord), len(cells))
	}
	seen := 0
	for _, cell := range cells {
		x, y := g.CellCoord(cell[0])
		group := byCoord[coord{x, y}]
		if len(group) != len(cell) {
			t.Fatalf("cell (%d,%d): CellCoord group %d points, Cells() slice %d", x, y, len(group), len(cell))
		}
		seen += len(cell)
	}
	if seen != len(pts) {
		t.Fatalf("cells cover %d of %d points", seen, len(pts))
	}

	g.Move(0, geom.Pt(100, 100))
	if x, y := g.CellCoord(0); x != int(100/1.25) || y != int(100/1.25) {
		t.Fatalf("CellCoord after Move = (%d,%d), want (%d,%d)", x, y, int(100/1.25), int(100/1.25))
	}
}

func TestCellCoordOutOfRangePanics(t *testing.T) {
	g := NewGrid([]geom.Point{geom.Pt(0, 0)}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range index")
		}
	}()
	g.CellCoord(1)
}
