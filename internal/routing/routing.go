// Package routing implements on-demand route discovery over the broadcast
// layer — the paper's opening motivation for efficient broadcasting
// ("[broadcasting] is widely and frequently used to ... find routing
// paths"). Discovery floods a route request (RREQ) from the source using a
// forwarding-set relaying policy; every node remembers the neighbor it
// first heard the request from, and when the request reaches the
// destination, the route reply walks that reverse-path tree back. The
// forwarding policy therefore trades discovery cost (RREQ transmissions)
// against route availability and stretch.
package routing

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/forwarding"
	"repro/internal/network"
)

// Route is the outcome of one discovery.
type Route struct {
	// Found reports whether the request reached the destination.
	Found bool
	// Path is the node sequence source..dest (nil when !Found).
	Path []int
	// Cost is the number of RREQ transmissions spent.
	Cost int
	// Optimal is the hop distance from source to dest in the full graph
	// (−1 if disconnected); Stretch compares Path against it.
	Optimal int
}

// Hops returns the path length in hops (−1 when no route was found).
func (r Route) Hops() int {
	if !r.Found {
		return -1
	}
	return len(r.Path) - 1
}

// Stretch returns Hops/Optimal (1 when no route or no optimal exists).
func (r Route) Stretch() float64 {
	if !r.Found || r.Optimal <= 0 {
		return 1
	}
	return float64(r.Hops()) / float64(r.Optimal)
}

// Discover runs one RREQ flood from source under the given relaying
// policy (nil = blind flooding) and extracts the route to dest from the
// reverse-path tree.
func Discover(g *network.Graph, source, dest int, policy forwarding.Selector) (Route, error) {
	if source < 0 || source >= g.Len() || dest < 0 || dest >= g.Len() {
		return Route{}, fmt.Errorf("routing: endpoints %d→%d out of range [0, %d)", source, dest, g.Len())
	}
	if source == dest {
		return Route{Found: true, Path: []int{source}, Optimal: 0}, nil
	}
	res, err := broadcast.Run(g, source, policy)
	if err != nil {
		return Route{}, err
	}
	route := Route{Cost: res.Transmissions, Optimal: g.HopDistances(source)[dest]}
	if !res.Received[dest] {
		return route, nil
	}
	// Walk the reverse-path tree dest → source.
	var rev []int
	for v := dest; v != -1; v = res.Parent[v] {
		rev = append(rev, v)
		if len(rev) > g.Len() {
			return Route{}, fmt.Errorf("routing: reverse-path cycle at node %d", v)
		}
	}
	if rev[len(rev)-1] != source {
		return Route{}, fmt.Errorf("routing: reverse path ends at %d, not the source", rev[len(rev)-1])
	}
	route.Found = true
	route.Path = make([]int, len(rev))
	for i, v := range rev {
		route.Path[len(rev)-1-i] = v
	}
	return route, nil
}

// Validate checks that a found route is a real path in the graph: it
// starts and ends at the right nodes and every consecutive pair is
// adjacent.
func (r Route) Validate(g *network.Graph, source, dest int) error {
	if !r.Found {
		return nil
	}
	if len(r.Path) == 0 || r.Path[0] != source || r.Path[len(r.Path)-1] != dest {
		return fmt.Errorf("routing: path %v does not join %d and %d", r.Path, source, dest)
	}
	for i := 0; i+1 < len(r.Path); i++ {
		if !g.IsNeighbor(r.Path[i], r.Path[i+1]) {
			return fmt.Errorf("routing: %d and %d are not adjacent", r.Path[i], r.Path[i+1])
		}
	}
	return nil
}
