package routing

import (
	"math/rand"
	"testing"

	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
)

func chain(t *testing.T, n int) *network.Graph {
	t.Helper()
	nodes := make([]network.Node, n)
	for i := range nodes {
		nodes[i] = network.Node{ID: i, Pos: geom.Pt(float64(i), 0), Radius: 1.2}
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func paperGraph(t *testing.T, model deploy.RadiusModel, degree float64, seed int64) *network.Graph {
	t.Helper()
	nodes, err := deploy.Generate(deploy.PaperConfig(model, degree),
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDiscoverOnChain(t *testing.T) {
	g := chain(t, 5)
	r, err := Discover(g, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found || r.Hops() != 4 || r.Stretch() != 1 {
		t.Fatalf("route = %+v, want the 4-hop chain path", r)
	}
	if err := r.Validate(g, 0, 4); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if r.Path[i] != want[i] {
			t.Fatalf("Path = %v, want %v", r.Path, want)
		}
	}
}

func TestDiscoverSelfAndUnreachable(t *testing.T) {
	g := chain(t, 3)
	r, err := Discover(g, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found || r.Hops() != 0 || len(r.Path) != 1 {
		t.Errorf("self route = %+v", r)
	}
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(50, 0), Radius: 1},
	}
	gd, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	r, err = Discover(gd, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Found || r.Hops() != -1 {
		t.Errorf("unreachable route = %+v", r)
	}
	if _, err := Discover(g, 0, 9, nil); err == nil {
		t.Error("bad destination must fail")
	}
}

// Flooding discovery finds hop-optimal routes (round-synchronous flooding
// is BFS).
func TestFloodingRoutesAreOptimal(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := paperGraph(t, deploy.Heterogeneous, 8, 1700+seed)
		dist := g.HopDistances(0)
		for dest := 1; dest < g.Len(); dest += 37 {
			r, err := Discover(g, 0, dest, nil)
			if err != nil {
				t.Fatal(err)
			}
			if (dist[dest] >= 0) != r.Found {
				t.Fatalf("seed %d dest %d: Found=%v but dist=%d", seed, dest, r.Found, dist[dest])
			}
			if !r.Found {
				continue
			}
			if err := r.Validate(g, 0, dest); err != nil {
				t.Fatal(err)
			}
			if r.Hops() != dist[dest] {
				t.Fatalf("seed %d dest %d: flooding route %d hops, BFS %d",
					seed, dest, r.Hops(), dist[dest])
			}
		}
	}
}

// Forwarding-set discovery must produce valid routes with bounded stretch
// and cost below flooding; cover-guaranteeing policies must find a route
// whenever one exists.
func TestForwardingSetDiscovery(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := paperGraph(t, deploy.Heterogeneous, 10, 1800+seed)
		dist := g.HopDistances(0)
		flood, err := Discover(g, 0, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range []forwarding.Selector{forwarding.Greedy{}, forwarding.SkylineRepair{}} {
			for dest := 1; dest < g.Len(); dest += 53 {
				r, err := Discover(g, 0, dest, sel)
				if err != nil {
					t.Fatal(err)
				}
				if dist[dest] >= 0 && !r.Found {
					t.Fatalf("seed %d %s dest %d: route exists (dist %d) but not found",
						seed, sel.Name(), dest, dist[dest])
				}
				if !r.Found {
					continue
				}
				if err := r.Validate(g, 0, dest); err != nil {
					t.Fatal(err)
				}
				if r.Hops() < dist[dest] {
					t.Fatalf("route shorter than BFS distance — impossible")
				}
				if r.Stretch() > 2.5 {
					t.Errorf("seed %d %s dest %d: stretch %.2f", seed, sel.Name(), dest, r.Stretch())
				}
				if r.Cost > flood.Cost {
					t.Errorf("seed %d %s: discovery cost %d exceeds flooding %d",
						seed, sel.Name(), r.Cost, flood.Cost)
				}
			}
		}
	}
}
