package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance is
	// 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want 32/7", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.StdErr() <= 0 {
		t.Error("StdErr must be positive")
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.StdErr() != 0 {
		t.Error("empty summary must be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-sample summary wrong")
	}
}

// Property: Welford agrees with the two-pass formulas.
func TestQuickSummaryMatchesTwoPass(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		if math.Abs(mean-s.Mean()) > 1e-9*(1+math.Abs(mean)) {
			return false
		}
		if n > 1 {
			v := 0.0
			for _, x := range xs {
				v += (x - mean) * (x - mean)
			}
			v /= float64(n - 1)
			if math.Abs(v-s.Var()) > 1e-7*(1+v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{3, 5, 3, 7, 3, 5} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(3) != 3 || h.Count(5) != 2 || h.Count(7) != 1 || h.Count(99) != 0 {
		t.Error("counts wrong")
	}
	sup := h.Support()
	if len(sup) != 3 || sup[0] != 3 || sup[1] != 5 || sup[2] != 7 {
		t.Errorf("Support = %v", sup)
	}
	if math.Abs(h.Mean()-26.0/6.0) > 1e-12 {
		t.Errorf("Mean = %v", h.Mean())
	}
	v, c := h.Mode()
	if v != 3 || c != 3 {
		t.Errorf("Mode = (%d, %d)", v, c)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Total() != 0 || len(h.Support()) != 0 {
		t.Error("empty histogram must be zeroed")
	}
	v, c := h.Mode()
	if v != 0 || c != 0 {
		t.Errorf("empty Mode = (%d, %d)", v, c)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Quantile(data, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(data, 1); got != 9 {
		t.Errorf("q1 = %v, want 9", got)
	}
	// Sorted: 1 1 2 3 4 5 6 9; median = (3+4)/2.
	if got := Median(data); got != 3.5 {
		t.Errorf("median = %v, want 3.5", got)
	}
	// The input must not be reordered.
	if data[0] != 3 || data[7] != 6 {
		t.Error("Quantile must not modify its input")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(data, -0.1)) ||
		!math.IsNaN(Quantile(data, 1.1)) || !math.IsNaN(Quantile(data, math.NaN())) {
		t.Error("invalid quantile inputs must return NaN")
	}
	// Interpolation: q=0.25 over 8 points → pos 1.75 → 1·0.25 + 2·0.75.
	if got, want := Quantile(data, 0.25), 1*0.25+2*0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("q0.25 = %v, want %v", got, want)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 5
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(data, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return Quantile(data, 0) <= Quantile(data, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("degree", "flooding", "skyline")
	tb.AddFloatRow("10", 10.0, 5.5)
	tb.AddRow("20", "20.000")     // short row: last cell empty
	tb.AddRow("x", "1", "2", "3") // long row: extra cell dropped
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "degree") || !strings.Contains(lines[0], "skyline") {
		t.Errorf("header line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "5.500") {
		t.Errorf("row line: %q", lines[2])
	}
	if strings.Contains(out, "3") && strings.Contains(lines[4], "  3") {
		t.Errorf("extra cell should be dropped: %q", lines[4])
	}

	csv := tb.CSV()
	if !strings.HasPrefix(csv, "degree,flooding,skyline\n") {
		t.Errorf("CSV header: %q", csv)
	}
	if !strings.Contains(csv, "10,10.000,5.500") {
		t.Errorf("CSV row missing: %q", csv)
	}
}
