// Package stats provides the summary statistics, histograms, and plain-text
// table rendering used by the experiment harness to report the paper's
// figures: average forwarding-set sizes (Figures 5.1 and 5.4) and
// forwarding-set size distributions (Figures 5.2, 5.3, and 5.5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates streaming moments with Welford's algorithm.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	everyValue bool // whether min/max are initialized
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.everyValue || x < s.min {
		s.min = x
	}
	if !s.everyValue || x > s.max {
		s.max = x
	}
	s.everyValue = true
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Histogram counts integer-valued observations, as in the paper's
// distribution figures where the x-axis is the forwarding-set size and the
// y-axis the number of random point sets.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add counts one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations with value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Support returns the observed values in increasing order.
func (h *Histogram) Support() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Mean returns the mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for v, c := range h.counts {
		sum += v * c
	}
	return float64(sum) / float64(h.total)
}

// Mode returns the most frequent value (smallest on ties) and its count.
func (h *Histogram) Mode() (value, count int) {
	for _, v := range h.Support() {
		if h.counts[v] > count {
			value, count = v, h.counts[v]
		}
	}
	return value, count
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) of the data using
// linear interpolation between order statistics (type-7, the R/NumPy
// default). It sorts a copy; the input is not modified. NaN for empty
// input or q outside [0, 1].
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(data []float64) float64 { return Quantile(data, 0.5) }

// Table renders rows of columns into an aligned plain-text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Cells beyond the header width are dropped; missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// AddFloatRow appends a row of floats formatted with %.3f after a leading
// label cell.
func (t *Table) AddFloatRow(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.3f", v))
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; callers use
// numeric and simple-label cells only).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		cells := make([]string, len(t.header))
		copy(cells, row)
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
