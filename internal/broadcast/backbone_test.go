package broadcast

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
)

func TestRunWithBackboneChain(t *testing.T) {
	g := chainGraph(t, 5)
	// Backbone = interior nodes: full delivery.
	res, err := RunWithBackbone(g, 0, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("delivery = %v", res.DeliveryRatio())
	}
	if res.Transmissions != 4 { // source + 3 backbone nodes
		t.Errorf("Transmissions = %d, want 4", res.Transmissions)
	}
	// An insufficient backbone strands the tail.
	res, err = RunWithBackbone(g, 0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received[4] || res.DeliveryRatio() >= 1 {
		t.Errorf("truncated backbone should strand node 4: %+v", res)
	}
	if _, err := RunWithBackbone(g, -1, nil); err == nil {
		t.Error("bad source must fail")
	}
	if _, err := RunWithBackbone(g, 0, []int{-3}); err == nil {
		t.Error("bad backbone member must fail")
	}
}

func TestTxEnergy(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 2},   // energy 4
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 1.5}, // energy 2.25
		{ID: 2, Pos: geom.Pt(2, 0), Radius: 1.5},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All three transmit under flooding: 4 + 2.25 + 2.25.
	if got, want := res.TxEnergy(g), 8.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("TxEnergy = %v, want %v", got, want)
	}
	// A result without transmitter tracking reports zero.
	var empty Result
	if empty.TxEnergy(g) != 0 {
		t.Error("untracked result must report zero energy")
	}
}

func TestDeliveryRatioEmpty(t *testing.T) {
	var r Result
	if r.DeliveryRatio() != 1 {
		t.Error("no reachable nodes → ratio 1 by convention")
	}
}
