package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/forwarding"
	"repro/internal/network"
)

// The broadcast storm paper (Ni et al., the paper's [1]) identifies
// collisions as the third storm symptom: rebroadcast timing is highly
// correlated, RTS/CTS does not apply to broadcast frames, so simultaneous
// nearby relays destroy each other's frames. RunWithCollisions models the
// effect with a slotted channel: all relays triggered by the same hop
// round transmit in the same slot, and a node that is in range of two or
// more same-slot transmitters receives nothing that slot (capture-free
// collision model). Lost frames are not retransmitted — broadcast frames
// are unacknowledged in 802.11 — so collisions translate directly into
// lost coverage.
//
// CollisionResult extends Result with the collision count. Comparing
// flooding against forwarding-set relaying under this model shows the
// storm's real damage: flooding loses coverage precisely because everyone
// relays at once.
type CollisionResult struct {
	Result
	// Collisions counts node-slots in which a receiver was jammed by
	// multiple simultaneous transmissions.
	Collisions int
}

// RunWithCollisions simulates a broadcast under the slotted collision
// model. fwd selects forwarding sets as in Run; nil means blind flooding.
func RunWithCollisions(g *network.Graph, source int, fwd forwarding.Selector) (CollisionResult, error) {
	if source < 0 || source >= g.Len() {
		return CollisionResult{}, fmt.Errorf("broadcast: source %d out of range [0, %d)", source, g.Len())
	}
	selGraph := g
	if fwd != nil && g.Model() == network.Unidirectional {
		bi, err := network.Build(g.Nodes(), network.Bidirectional)
		if err != nil {
			return CollisionResult{}, err
		}
		selGraph = bi
	}

	m := bcInstr.Load()
	if m != nil {
		m.runs.Inc()
	}

	res := CollisionResult{Result: Result{Received: make([]bool, g.Len())}}
	for _, d := range g.HopDistances(source) {
		if d > 0 {
			res.Reachable++
		}
	}

	type pending struct {
		node int
		hop  int
	}
	frontier := []pending{{source, 0}}
	res.Received[source] = true

	round := 0
	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].node < frontier[b].node })
		round++
		roundReceptions := 0
		prevDelivered, prevRedundant, prevCollisions := res.Delivered, res.Redundant, res.Collisions
		// Count transmissions covering each node this slot.
		hits := make(map[int]int)
		from := make(map[int]pending)
		for _, tx := range frontier {
			res.Transmissions++
			for _, v := range g.Neighbors(tx.node) {
				roundReceptions++
				hits[v]++
				if _, ok := from[v]; !ok || tx.node < from[v].node {
					from[v] = tx
				}
			}
		}
		var next []pending
		// Deterministic iteration order over receivers.
		receivers := make([]int, 0, len(hits))
		for v := range hits {
			receivers = append(receivers, v)
		}
		sort.Ints(receivers)
		for _, v := range receivers {
			if hits[v] > 1 {
				res.Collisions++
				if res.Received[v] {
					res.Redundant += hits[v]
				}
				continue // jammed: nothing decodes this slot
			}
			if res.Received[v] {
				res.Redundant++
				continue
			}
			tx := from[v]
			res.Received[v] = true
			res.Delivered++
			hop := tx.hop + 1
			if hop > res.MaxHop {
				res.MaxHop = hop
			}
			relay := true
			if fwd != nil {
				set, err := fwd.Select(selGraph, tx.node)
				if err != nil {
					return CollisionResult{}, err
				}
				relay = containsID(set, v)
			}
			if relay {
				next = append(next, pending{v, hop})
			}
		}
		if m != nil {
			m.collisions.Add(int64(res.Collisions - prevCollisions))
			m.recordRound(round, len(frontier), roundReceptions,
				res.Delivered-prevDelivered, res.Redundant-prevRedundant)
		}
		frontier = next
	}
	if m != nil {
		m.recordDone(source, &res.Result, res.Collisions)
	}
	return res, nil
}
