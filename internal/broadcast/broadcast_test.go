package broadcast

import (
	"math/rand"
	"testing"

	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
)

func chainGraph(t *testing.T, n int) *network.Graph {
	t.Helper()
	nodes := make([]network.Node, n)
	for i := range nodes {
		nodes[i] = network.Node{ID: i, Pos: geom.Pt(float64(i), 0), Radius: 1.2}
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func paperGraph(t *testing.T, model deploy.RadiusModel, degree float64, seed int64) *network.Graph {
	t.Helper()
	nodes, err := deploy.Generate(deploy.PaperConfig(model, degree), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFloodingOnChain(t *testing.T) {
	g := chainGraph(t, 5)
	res, err := Run(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 4 || res.Reachable != 4 {
		t.Errorf("Delivered/Reachable = %d/%d, want 4/4", res.Delivered, res.Reachable)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("DeliveryRatio = %v", res.DeliveryRatio())
	}
	// Every node transmits under flooding.
	if res.Transmissions != 5 {
		t.Errorf("Transmissions = %d, want 5", res.Transmissions)
	}
	if res.MaxHop != 4 {
		t.Errorf("MaxHop = %d, want 4", res.MaxHop)
	}
	// Each interior transmission is heard redundantly by the upstream
	// node: nodes 1..4 each deliver one redundant copy back, and node i's
	// transmission also reaches i+1 after it already has the message only
	// at the chain end. Just require redundancy to be positive.
	if res.Redundant == 0 {
		t.Error("flooding on a chain must produce redundant receptions")
	}
}

func TestSourceOutOfRange(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := Run(g, -1, nil); err == nil {
		t.Error("negative source must fail")
	}
	if _, err := Run(g, 3, nil); err == nil {
		t.Error("out-of-range source must fail")
	}
}

func TestDisconnectedComponentNotCounted(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.5, 0), Radius: 1},
		{ID: 2, Pos: geom.Pt(10, 10), Radius: 1},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable != 1 || res.Delivered != 1 {
		t.Errorf("Reachable/Delivered = %d/%d, want 1/1", res.Reachable, res.Delivered)
	}
	if res.Received[2] {
		t.Error("isolated node must not receive")
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("DeliveryRatio = %v", res.DeliveryRatio())
	}
}

// With cover-guaranteeing selectors, every reachable node must receive the
// message, while transmissions must not exceed flooding's.
func TestForwardingSetBroadcastReachesAll(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, model := range []deploy.RadiusModel{deploy.Homogeneous, deploy.Heterogeneous} {
			g := paperGraph(t, model, 8, 500+seed)
			flood, err := Run(g, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if flood.DeliveryRatio() != 1 {
				t.Fatalf("flooding must reach every reachable node")
			}
			for _, sel := range []forwarding.Selector{forwarding.Greedy{}, forwarding.SkylineRepair{}} {
				res, err := Run(g, 0, sel)
				if err != nil {
					t.Fatalf("%v %s: %v", model, sel.Name(), err)
				}
				if res.DeliveryRatio() != 1 {
					t.Fatalf("%v %s: delivery ratio %v < 1 (delivered %d of %d)",
						model, sel.Name(), res.DeliveryRatio(), res.Delivered, res.Reachable)
				}
				if res.Transmissions > flood.Transmissions {
					t.Fatalf("%v %s: %d transmissions exceed flooding's %d",
						model, sel.Name(), res.Transmissions, flood.Transmissions)
				}
				if res.Redundant > flood.Redundant {
					t.Fatalf("%v %s: redundancy %d exceeds flooding's %d",
						model, sel.Name(), res.Redundant, flood.Redundant)
				}
			}
		}
	}
}

// In homogeneous networks the skyline selector guarantees 2-hop coverage,
// so skyline-based broadcast must be complete there too.
func TestSkylineBroadcastCompleteHomogeneous(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := paperGraph(t, deploy.Homogeneous, 10, 600+seed)
		res, err := Run(g, 0, forwarding.Skyline{})
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveryRatio() != 1 {
			t.Fatalf("seed %d: homogeneous skyline broadcast incomplete: %d of %d",
				seed, res.Delivered, res.Reachable)
		}
	}
}

func TestPrecomputeAndRunCached(t *testing.T) {
	g := paperGraph(t, deploy.Homogeneous, 8, 700)
	sets, err := PrecomputeSets(g, forwarding.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != g.Len() {
		t.Fatalf("PrecomputeSets returned %d sets", len(sets))
	}
	cached, err := RunCached(g, 0, sets)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(g, 0, forwarding.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Transmissions != direct.Transmissions || cached.Delivered != direct.Delivered ||
		cached.Redundant != direct.Redundant || cached.MaxHop != direct.MaxHop {
		t.Errorf("cached run %+v differs from direct %+v", cached, direct)
	}
	if _, err := RunCached(g, 0, sets[:1]); err == nil {
		t.Error("mismatched set count must fail")
	}
}

// Determinism: identical inputs give identical results.
func TestRunDeterministic(t *testing.T) {
	g := paperGraph(t, deploy.Heterogeneous, 8, 800)
	a, err := Run(g, 0, forwarding.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, 0, forwarding.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Transmissions != b.Transmissions || a.Delivered != b.Delivered ||
		a.Redundant != b.Redundant || a.MaxHop != b.MaxHop {
		t.Errorf("non-deterministic results: %+v vs %+v", a, b)
	}
}

// The Figure 5.6 pathology at network scale: skyline relaying in
// heterogeneous networks may strand nodes, which is exactly the drawback
// the paper reports. Verify the simulator can exhibit ratios below 1 while
// repair always delivers.
func TestHeterogeneousSkylineCanStrand(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.8, 0.3), Radius: 1},
		{ID: 2, Pos: geom.Pt(0.8, -0.3), Radius: 1},
		{ID: 3, Pos: geom.Pt(0.5, 0), Radius: 2.5},
		{ID: 4, Pos: geom.Pt(1.7, 0.3), Radius: 0.95},
		{ID: 5, Pos: geom.Pt(1.7, -0.3), Radius: 0.95},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, forwarding.Skyline{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio() >= 1 {
		t.Errorf("skyline relaying should strand u4/u5 here, ratio = %v", res.DeliveryRatio())
	}
	rep, err := Run(g, 0, forwarding.SkylineRepair{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeliveryRatio() != 1 {
		t.Errorf("repair must deliver everywhere, ratio = %v", rep.DeliveryRatio())
	}
}
