package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/network"
)

// Sender-aware pruning broadcasts, after Lou & Wu ("On Reducing Broadcast
// Redundancy in Ad Hoc Wireless Networks", the paper's reference [9]).
// Unlike the static multipoint-relay semantics of Run — where node u's
// forwarding set depends only on u — dominant pruning picks the forward
// list per packet, exploiting what the previous hop's transmission already
// covered:
//
//   - Partial dominant pruning (PDP): when v relays a packet received from
//     u, its forward list only needs to cover N₂(v) \ (N(u) ∪ N(v)) — the
//     2-hop neighbors that neither u's transmission nor v's own can have
//     reached.
//   - Total dominant pruning (TDP): the forward list covers
//     N₂(v) \ (N(u) ∪ N(v) ∪ N₂(u)∩N(v)…) — in Lou & Wu's formulation,
//     N₂(v) \ N₂[u] where N₂[u] is u's closed 2-hop coverage, assuming the
//     packet carries u's 2-hop list. TDP prunes more at the cost of
//     shipping 2-hop lists in packets.
//
// Both pick the cover greedily (Chvátal) like the MPR heuristic.

// PruningMode selects the dominant-pruning variant.
type PruningMode int

const (
	// PDP is partial dominant pruning: the sender's 1-hop set is excluded
	// from the receiver's cover target.
	PDP PruningMode = iota
	// TDP is total dominant pruning: the sender's closed 2-hop set is
	// excluded (the packet carries the sender's 2-hop list).
	TDP
)

// String implements fmt.Stringer.
func (m PruningMode) String() string {
	if m == PDP {
		return "pdp"
	}
	return "tdp"
}

// RunDominantPruning simulates a broadcast with per-packet forward lists.
// When a node v first receives the packet from sender u, v computes a
// greedy cover of its pruned 2-hop target and piggybacks that forward
// list; only listed nodes relay further.
func RunDominantPruning(g *network.Graph, source int, mode PruningMode) (Result, error) {
	if source < 0 || source >= g.Len() {
		return Result{}, fmt.Errorf("broadcast: source %d out of range [0, %d)", source, g.Len())
	}
	res := Result{Received: make([]bool, g.Len())}
	for _, d := range g.HopDistances(source) {
		if d > 0 {
			res.Reachable++
		}
	}

	type packet struct {
		node    int // the transmitter
		sender  int // whom the transmitter first heard from (-1 for source)
		hop     int
		forward []int // forward list chosen by the transmitter
	}
	first := packet{node: source, sender: -1, hop: 0}
	first.forward = pruneForwardList(g, source, -1, mode)
	frontier := []packet{first}
	res.Received[source] = true

	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].node < frontier[b].node })
		type arrival struct {
			to  int
			pkt packet
		}
		var arrivals []arrival
		for _, tx := range frontier {
			res.Transmissions++
			for _, v := range g.Neighbors(tx.node) {
				if res.Received[v] {
					res.Redundant++
					continue
				}
				arrivals = append(arrivals, arrival{v, tx})
			}
		}
		var next []packet
		for _, a := range arrivals {
			if res.Received[a.to] {
				res.Redundant++
				continue
			}
			res.Received[a.to] = true
			res.Delivered++
			hop := a.pkt.hop + 1
			if hop > res.MaxHop {
				res.MaxHop = hop
			}
			if containsID(a.pkt.forward, a.to) {
				next = append(next, packet{
					node:    a.to,
					sender:  a.pkt.node,
					hop:     hop,
					forward: pruneForwardList(g, a.to, a.pkt.node, mode),
				})
			}
		}
		frontier = next
	}
	return res, nil
}

// pruneForwardList computes v's forward list for a packet received from
// sender (−1 when v is the source): a greedy cover, by v's 1-hop
// neighbors, of the pruned 2-hop target set.
func pruneForwardList(g *network.Graph, v, sender int, mode PruningMode) []int {
	// Target: 2-hop neighbors of v ...
	exclude := make(map[int]bool)
	exclude[v] = true
	for _, w := range g.Neighbors(v) {
		exclude[w] = true
	}
	if sender >= 0 {
		// ... minus what the sender's transmission already covered.
		exclude[sender] = true
		for _, w := range g.Neighbors(sender) {
			exclude[w] = true
		}
		if mode == TDP {
			// TDP: the packet carried the sender's 2-hop list; those nodes
			// are covered by the sender's own forward list.
			for _, w := range g.TwoHop(sender) {
				exclude[w] = true
			}
		}
	}
	var target []int
	for _, t := range g.TwoHop(v) {
		if !exclude[t] {
			target = append(target, t)
		}
	}
	if len(target) == 0 {
		return nil
	}
	bit := make(map[int]int, len(target))
	for i, t := range target {
		bit[t] = i
	}
	nbrs := g.Neighbors(v)
	masks := make([]*bitset.Set, len(nbrs))
	for i, w := range nbrs {
		m := bitset.New(len(target))
		for _, t := range g.Neighbors(w) {
			if b, ok := bit[t]; ok {
				m.Add(b)
			}
		}
		masks[i] = m
	}
	uncovered := bitset.New(len(target))
	uncovered.Fill()
	var out []int
	for !uncovered.Empty() {
		bestGain, best := 0, -1
		for i := range nbrs {
			gain := masks[i].Count() - masks[i].CountAndNot(uncovered)
			if gain > bestGain {
				bestGain, best = gain, i
			}
		}
		if best < 0 {
			break // residual target unreachable via v (covered by sender's relays)
		}
		out = append(out, nbrs[best])
		uncovered.AndNotWith(masks[best])
	}
	sort.Ints(out)
	return out
}
