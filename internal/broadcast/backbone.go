package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// RunWithBackbone simulates a backbone broadcast: the source transmits,
// and thereafter only members of the backbone set (typically a connected
// dominating set) relay on first reception. With a CDS backbone every
// reachable node receives: each node is dominated by a member and the
// member subgraph is connected.
func RunWithBackbone(g *network.Graph, source int, backbone []int) (Result, error) {
	if source < 0 || source >= g.Len() {
		return Result{}, fmt.Errorf("broadcast: source %d out of range [0, %d)", source, g.Len())
	}
	in := make([]bool, g.Len())
	for _, v := range backbone {
		if v < 0 || v >= g.Len() {
			return Result{}, fmt.Errorf("broadcast: backbone node %d out of range", v)
		}
		in[v] = true
	}

	res := Result{Received: make([]bool, g.Len())}
	for _, d := range g.HopDistances(source) {
		if d > 0 {
			res.Reachable++
		}
	}
	type pending struct {
		node, hop int
	}
	frontier := []pending{{source, 0}}
	res.Received[source] = true
	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].node < frontier[b].node })
		var next []pending
		for _, tx := range frontier {
			res.Transmissions++
			for _, v := range g.Neighbors(tx.node) {
				if res.Received[v] {
					res.Redundant++
					continue
				}
				res.Received[v] = true
				res.Delivered++
				hop := tx.hop + 1
				if hop > res.MaxHop {
					res.MaxHop = hop
				}
				if in[v] {
					next = append(next, pending{v, hop})
				}
			}
		}
		frontier = next
	}
	return res, nil
}
