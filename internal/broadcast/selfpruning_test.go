package broadcast

import (
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/network"
)

func TestSelfPruningChain(t *testing.T) {
	g := chainGraph(t, 6)
	res, err := RunSelfPruning(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("delivery = %v, want 1", res.DeliveryRatio())
	}
	// On a chain every interior node has an uncovered neighbor, so all but
	// the last transmit.
	if res.Transmissions != 5 {
		t.Errorf("Transmissions = %d, want 5 (last node prunes)", res.Transmissions)
	}
}

func TestSelfPruningDenseClique(t *testing.T) {
	// A clique: the source covers everyone; every receiver prunes.
	var nodes []network.Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, network.Node{
			ID: i, Pos: geom.Pt(float64(i)*0.1, 0), Radius: 5,
		})
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSelfPruning(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != 1 {
		t.Errorf("Transmissions = %d, want 1 (everyone prunes in a clique)", res.Transmissions)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("delivery = %v", res.DeliveryRatio())
	}
}

// Self-pruning must always deliver to every reachable node and never use
// more transmissions than flooding.
func TestSelfPruningAlwaysDelivers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, model := range []deploy.RadiusModel{deploy.Homogeneous, deploy.Heterogeneous} {
			g := paperGraph(t, model, 10, 900+seed)
			res, err := RunSelfPruning(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveryRatio() != 1 {
				t.Fatalf("%v seed %d: delivery %v (delivered %d of %d)",
					model, seed, res.DeliveryRatio(), res.Delivered, res.Reachable)
			}
			flood, err := Run(g, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Transmissions > flood.Transmissions {
				t.Fatalf("%v seed %d: self-pruning %d tx exceeds flooding %d",
					model, seed, res.Transmissions, flood.Transmissions)
			}
		}
	}
}

func TestSelfPruningSourceValidation(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := RunSelfPruning(g, -1); err == nil {
		t.Error("negative source must fail")
	}
	if _, err := RunSelfPruning(g, 9); err == nil {
		t.Error("out-of-range source must fail")
	}
}
