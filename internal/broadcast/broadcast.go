// Package broadcast simulates network-wide broadcasting to quantify the
// broadcast storm problem the paper opens with (§1.2): how many
// transmissions a broadcast costs, how many nodes it reaches, and how much
// reception redundancy it induces, under blind flooding versus
// forwarding-set-based relaying.
//
// The simulation is a deterministic discrete-event process in hop rounds.
// Relaying follows multipoint-relay semantics: when a node first receives
// the message, it retransmits if and only if it belongs to the forwarding
// set of the node it first heard from. Transmissions propagate over the
// graph's out-edges, so running on a Unidirectional graph models the
// physical reception asymmetries while forwarding sets are chosen on the
// bidirectional topology, and running on a Bidirectional graph matches the
// paper's idealized model.
package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/forwarding"
	"repro/internal/network"
	"repro/internal/obs"
)

// Result summarizes one simulated broadcast.
type Result struct {
	// Transmissions is the number of nodes that transmitted (including the
	// source).
	Transmissions int
	// Delivered is the number of nodes that received the message
	// (excluding the source).
	Delivered int
	// Reachable is the number of nodes (excluding the source) reachable
	// from the source in the graph; Delivered/Reachable is the delivery
	// ratio.
	Reachable int
	// Redundant counts receptions beyond each node's first: the wasted
	// receptions that constitute the broadcast storm.
	Redundant int
	// MaxHop is the largest hop count at which any node first received
	// the message.
	MaxHop int
	// Received[v] reports whether node v got the message.
	Received []bool
	// Parent[v] is the node from which v first received the message (−1
	// for the source and for nodes that never received). Populated by Run
	// and RunCached; other simulations leave it nil. The parent pointers
	// form the reverse-path tree that route discovery walks back.
	Parent []int
	// Transmitted[v] reports whether node v transmitted. Populated by Run
	// and RunCached; other simulations leave it nil. Energy accounting
	// (transmission cost ∝ r²) is built on this.
	Transmitted []bool
}

// TxEnergy returns the total transmission energy of the broadcast under
// the standard disk model, where one transmission at radius r costs
// energy proportional to the covered area r² (unit constant). Zero when
// the simulation did not record transmitters.
func (r Result) TxEnergy(g *network.Graph) float64 {
	total := 0.0
	for v, tx := range r.Transmitted {
		if tx {
			rad := g.Node(v).Radius
			total += rad * rad
		}
	}
	return total
}

// DeliveryRatio returns Delivered / Reachable (1 when nothing is
// reachable).
func (r Result) DeliveryRatio() float64 {
	if r.Reachable == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Reachable)
}

// Run simulates a broadcast from source using the selector to choose each
// relaying node's forwarding set. Forwarding sets are computed on demand,
// only for nodes that actually transmit. fwd may be nil, in which case
// every node relays (blind flooding).
//
// When g is unidirectional, forwarding sets are still chosen on the
// derived bidirectional topology (what the nodes' HELLO tables describe),
// while propagation uses the physical reception edges.
func Run(g *network.Graph, source int, fwd forwarding.Selector) (Result, error) {
	if source < 0 || source >= g.Len() {
		return Result{}, fmt.Errorf("broadcast: source %d out of range [0, %d)", source, g.Len())
	}
	selGraph := g
	if fwd != nil && g.Model() == network.Unidirectional {
		bi, err := network.Build(g.Nodes(), network.Bidirectional)
		if err != nil {
			return Result{}, err
		}
		selGraph = bi
	}

	m := bcInstr.Load()
	if m != nil {
		m.runs.Inc()
	}

	res := Result{Received: make([]bool, g.Len())}
	for _, d := range g.HopDistances(source) {
		if d > 0 {
			res.Reachable++
		}
	}

	type pending struct {
		node int
		hop  int
	}
	// frontier holds nodes that will transmit this round.
	frontier := []pending{{source, 0}}
	res.Received[source] = true
	res.Parent = make([]int, g.Len())
	for i := range res.Parent {
		res.Parent[i] = -1
	}
	res.Transmitted = make([]bool, g.Len())

	round := 0
	for len(frontier) > 0 {
		// Deterministic order within a round.
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].node < frontier[b].node })
		round++
		var roundSpan obs.Span
		if m != nil {
			roundSpan = m.spanRound.Begin()
		}
		// Per-round instrumentation deltas, accumulated locally so the
		// reception loops carry no atomic traffic.
		roundReceptions := 0
		prevDelivered, prevRedundant := res.Delivered, res.Redundant
		var next []pending
		// First, all transmissions of this round are delivered.
		type arrival struct{ to, from, hop int }
		var arrivals []arrival
		for _, tx := range frontier {
			res.Transmissions++
			res.Transmitted[tx.node] = true
			for _, v := range g.Neighbors(tx.node) {
				roundReceptions++
				if res.Received[v] {
					res.Redundant++
					continue
				}
				arrivals = append(arrivals, arrival{v, tx.node, tx.hop + 1})
			}
		}
		// Then receptions are processed; a node reached by several
		// same-round transmissions takes the lowest-ID parent first and
		// counts the rest as redundant.
		for _, a := range arrivals {
			if res.Received[a.to] {
				res.Redundant++
				continue
			}
			res.Received[a.to] = true
			res.Parent[a.to] = a.from
			res.Delivered++
			if a.hop > res.MaxHop {
				res.MaxHop = a.hop
			}
			relay := true
			if fwd != nil {
				set, err := fwd.Select(selGraph, a.from)
				if err != nil {
					return Result{}, err
				}
				if m != nil {
					m.fwdSetSize.Observe(float64(len(set)))
				}
				relay = containsID(set, a.to)
			}
			if relay {
				next = append(next, pending{a.to, a.hop})
			}
		}
		if m != nil {
			m.recordRound(round, len(frontier), roundReceptions,
				res.Delivered-prevDelivered, res.Redundant-prevRedundant)
		}
		if roundSpan.Sampled() {
			roundSpan.End(map[string]any{"round": round, "transmitters": len(frontier)})
		}
		frontier = next
	}
	if m != nil {
		m.recordDone(source, &res, 0)
	}
	return res, nil
}

func containsID(sorted []int, id int) bool {
	i := sort.SearchInts(sorted, id)
	return i < len(sorted) && sorted[i] == id
}

// RunCached is Run with forwarding sets precomputed for every node. Use it
// when simulating many broadcasts on the same graph.
func RunCached(g *network.Graph, source int, sets [][]int) (Result, error) {
	if len(sets) != g.Len() {
		return Result{}, fmt.Errorf("broadcast: %d forwarding sets for %d nodes", len(sets), g.Len())
	}
	return Run(g, source, cachedSelector{sets})
}

// PrecomputeSets evaluates the selector for every node of the graph.
func PrecomputeSets(g *network.Graph, fwd forwarding.Selector) ([][]int, error) {
	sets := make([][]int, g.Len())
	for u := 0; u < g.Len(); u++ {
		set, err := fwd.Select(g, u)
		if err != nil {
			return nil, fmt.Errorf("broadcast: selecting for node %d: %w", u, err)
		}
		sets[u] = set
	}
	return sets, nil
}

type cachedSelector struct{ sets [][]int }

func (c cachedSelector) Name() string { return "cached" }

func (c cachedSelector) Select(_ *network.Graph, u int) ([]int, error) {
	return c.sets[u], nil
}
