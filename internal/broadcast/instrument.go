package broadcast

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Metric and event names exported by this package (see
// docs/OBSERVABILITY.md).
const (
	MetricRunsTotal          = "broadcast_runs_total"
	MetricRoundsTotal        = "broadcast_rounds_total"
	MetricTransmissionsTotal = "broadcast_transmissions_total"
	MetricReceptionsTotal    = "broadcast_receptions_total"
	MetricRedundantTotal     = "broadcast_redundant_total"
	MetricCollisionsTotal    = "broadcast_collisions_total"
	MetricFwdSetSize         = "broadcast_forwarding_set_size"
	MetricFrontierSize       = "broadcast_round_frontier_size"

	EventRound = "broadcast_round"
	EventDone  = "broadcast_done"

	// SpanRound is the span kind wrapping each hop round's processing (see
	// obs.SpanTracer); the EventRound emitted inside it carries the totals.
	SpanRound = "broadcast_round_span"
)

// bcMetrics holds pre-resolved handles plus the optional event sink.
// Counter updates are batched per hop round, so the per-reception hot loop
// carries no instrumentation cost beyond local integer arithmetic.
type bcMetrics struct {
	runs          *obs.Counter
	rounds        *obs.Counter
	transmissions *obs.Counter
	receptions    *obs.Counter
	redundant     *obs.Counter
	collisions    *obs.Counter
	fwdSetSize    *obs.Histogram
	frontierSize  *obs.Histogram
	sink          *obs.EventSink
	spanRound     *obs.SpanKind
}

var bcInstr atomic.Pointer[bcMetrics]

// Instrument installs metrics collection (and, optionally, a structured
// per-round event trace) for this package. Either argument may be nil;
// passing both nil disables instrumentation entirely.
func Instrument(r *obs.Registry, sink *obs.EventSink) {
	if r == nil && sink == nil {
		bcInstr.Store(nil)
		return
	}
	tracer := obs.NewSpanTracer(sink, 0)
	bcInstr.Store(&bcMetrics{
		runs:          r.Counter(MetricRunsTotal),
		rounds:        r.Counter(MetricRoundsTotal),
		transmissions: r.Counter(MetricTransmissionsTotal),
		receptions:    r.Counter(MetricReceptionsTotal),
		redundant:     r.Counter(MetricRedundantTotal),
		collisions:    r.Counter(MetricCollisionsTotal),
		fwdSetSize:    r.Histogram(MetricFwdSetSize),
		frontierSize:  r.Histogram(MetricFrontierSize),
		sink:          sink,
		spanRound:     tracer.Kind(SpanRound),
	})
}

// recordRound books the totals of one hop round and emits the per-round
// trace event.
func (m *bcMetrics) recordRound(round, frontier, receptions, delivered, redundant int) {
	m.rounds.Inc()
	m.transmissions.Add(int64(frontier))
	m.receptions.Add(int64(receptions))
	m.redundant.Add(int64(redundant))
	m.frontierSize.Observe(float64(frontier))
	m.sink.Emit(EventRound, map[string]any{
		"round":        round,
		"transmitters": frontier,
		"receptions":   receptions,
		"delivered":    delivered,
		"redundant":    redundant,
	})
}

// recordDone books run-level results and emits the completion event.
func (m *bcMetrics) recordDone(source int, res *Result, collisions int) {
	fields := map[string]any{
		"source":        source,
		"transmissions": res.Transmissions,
		"delivered":     res.Delivered,
		"reachable":     res.Reachable,
		"redundant":     res.Redundant,
		"max_hop":       res.MaxHop,
	}
	if collisions > 0 {
		fields["collisions"] = collisions
	}
	m.sink.Emit(EventDone, fields)
}
