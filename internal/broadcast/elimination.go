package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// RunNeighborElimination simulates the neighbor-elimination scheme
// (Stojmenovic, Seddigh & Zunic, the paper's reference [13]): a node that
// receives the packet delays its own relay by one round, observes the
// transmissions it can overhear in the meantime, eliminates from its
// responsibility every neighbor covered by an overheard transmission, and
// relays only if some neighbor remains unaccounted for. Unlike dominant
// pruning, the decision needs no forward lists in packets — only each
// node's 1-hop table and promiscuous listening.
func RunNeighborElimination(g *network.Graph, source int) (Result, error) {
	if source < 0 || source >= g.Len() {
		return Result{}, fmt.Errorf("broadcast: source %d out of range [0, %d)", source, g.Len())
	}
	res := Result{Received: make([]bool, g.Len())}
	for _, d := range g.HopDistances(source) {
		if d > 0 {
			res.Reachable++
		}
	}

	// uncovered[v] tracks the neighbors v still feels responsible for;
	// initialized lazily when v first receives.
	uncovered := make([]map[int]bool, g.Len())
	received := res.Received
	received[source] = true

	// The source transmits unconditionally in round 0.
	transmitters := []int{source}
	// pending[v] is true when v has scheduled a (possibly eliminated)
	// relay for the next round.
	var pending []int
	hop := make([]int, g.Len())

	for len(transmitters) > 0 {
		sort.Ints(transmitters)
		// Deliver this round's transmissions and update elimination state
		// of every node that overhears them.
		newlyReceived := []int{}
		for _, tx := range transmitters {
			res.Transmissions++
			for _, v := range g.Neighbors(tx) {
				if !received[v] {
					received[v] = true
					res.Delivered++
					hop[v] = hop[tx] + 1
					if hop[v] > res.MaxHop {
						res.MaxHop = hop[v]
					}
					newlyReceived = append(newlyReceived, v)
					uncovered[v] = make(map[int]bool, g.Degree(v))
					for _, w := range g.Neighbors(v) {
						uncovered[v][w] = true
					}
				} else {
					res.Redundant++
				}
			}
		}
		// Every node that can hear a transmitter eliminates the
		// transmitter's closed neighborhood from its responsibility.
		for _, tx := range transmitters {
			for _, v := range g.Neighbors(tx) {
				if uncovered[v] == nil {
					continue
				}
				delete(uncovered[v], tx)
				for _, w := range g.Neighbors(tx) {
					delete(uncovered[v], w)
				}
			}
		}
		// Nodes that received earlier and waited one round now decide.
		var next []int
		for _, v := range pending {
			if len(uncovered[v]) > 0 {
				next = append(next, v)
			}
		}
		// Nodes that received this round wait one round (they become
		// pending), giving them a chance to overhear eliminations.
		pending = newlyReceived
		transmitters = next
		// Termination: if nobody transmits but nodes are still pending,
		// flush them through one final decision round.
		if len(transmitters) == 0 && len(pending) > 0 {
			for _, v := range pending {
				if len(uncovered[v]) > 0 {
					transmitters = append(transmitters, v)
				}
			}
			pending = nil
		}
	}
	return res, nil
}
