package broadcast

import (
	"testing"

	"repro/internal/deploy"
	"repro/internal/forwarding"
)

func TestPruningModeString(t *testing.T) {
	if PDP.String() != "pdp" || TDP.String() != "tdp" {
		t.Error("PruningMode.String mismatch")
	}
}

func TestDominantPruningChain(t *testing.T) {
	g := chainGraph(t, 6)
	for _, mode := range []PruningMode{PDP, TDP} {
		res, err := RunDominantPruning(g, 0, mode)
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveryRatio() != 1 {
			t.Errorf("%v: delivery %v on a chain", mode, res.DeliveryRatio())
		}
		// On a chain, only nodes with a further 2-hop target relay: 0..4.
		if res.Transmissions > 5 {
			t.Errorf("%v: %d transmissions on a 6-chain, want ≤ 5", mode, res.Transmissions)
		}
	}
}

// Dominant pruning must always deliver everywhere and use no more
// transmissions than the static greedy-MPR scheme; TDP prunes at least as
// hard as PDP on aggregate.
func TestDominantPruningDeliversAndPrunes(t *testing.T) {
	var mprTx, pdpTx, tdpTx int
	for seed := int64(0); seed < 10; seed++ {
		for _, model := range []deploy.RadiusModel{deploy.Homogeneous, deploy.Heterogeneous} {
			g := paperGraph(t, model, 10, 1200+seed)
			pdp, err := RunDominantPruning(g, 0, PDP)
			if err != nil {
				t.Fatal(err)
			}
			tdp, err := RunDominantPruning(g, 0, TDP)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []Result{pdp, tdp} {
				if r.DeliveryRatio() != 1 {
					t.Fatalf("%v seed %d: delivery %v (delivered %d of %d)",
						model, seed, r.DeliveryRatio(), r.Delivered, r.Reachable)
				}
			}
			mpr, err := Run(g, 0, forwarding.Greedy{})
			if err != nil {
				t.Fatal(err)
			}
			mprTx += mpr.Transmissions
			pdpTx += pdp.Transmissions
			tdpTx += tdp.Transmissions
		}
	}
	// Pruning is not a per-instance dominance (greedy choices differ), but
	// on aggregate the dynamic schemes must stay in the same band as the
	// static MPR scheme and TDP must prune at least as hard as PDP.
	if float64(pdpTx) > 1.05*float64(mprTx) {
		t.Errorf("PDP total transmissions %d far exceed static greedy MPR %d", pdpTx, mprTx)
	}
	if float64(tdpTx) > 1.02*float64(pdpTx) {
		t.Errorf("TDP total transmissions %d exceed PDP %d", tdpTx, pdpTx)
	}
}

func TestDominantPruningSourceValidation(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := RunDominantPruning(g, -1, PDP); err == nil {
		t.Error("negative source must fail")
	}
}

func TestNeighborEliminationChain(t *testing.T) {
	g := chainGraph(t, 6)
	res, err := RunNeighborElimination(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("delivery = %v", res.DeliveryRatio())
	}
}

func TestNeighborEliminationAlwaysDelivers(t *testing.T) {
	var elimTx, floodTx int
	for seed := int64(0); seed < 10; seed++ {
		for _, model := range []deploy.RadiusModel{deploy.Homogeneous, deploy.Heterogeneous} {
			g := paperGraph(t, model, 10, 1300+seed)
			res, err := RunNeighborElimination(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveryRatio() != 1 {
				t.Fatalf("%v seed %d: delivery %v (delivered %d of %d)",
					model, seed, res.DeliveryRatio(), res.Delivered, res.Reachable)
			}
			flood, err := Run(g, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			elimTx += res.Transmissions
			floodTx += flood.Transmissions
		}
	}
	if elimTx >= floodTx {
		t.Errorf("neighbor elimination %d transmissions should undercut flooding %d",
			elimTx, floodTx)
	}
}

func TestNeighborEliminationSourceValidation(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := RunNeighborElimination(g, 5); err == nil {
		t.Error("out-of-range source must fail")
	}
}
