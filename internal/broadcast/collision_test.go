package broadcast

import (
	"testing"

	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
)

func TestCollisionChainNoCollisions(t *testing.T) {
	// On a chain only one node transmits per slot: no collisions, full
	// delivery, identical to the collision-free simulation.
	g := chainGraph(t, 6)
	res, err := RunWithCollisions(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Errorf("chain flooding collisions = %d, want 0", res.Collisions)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("delivery = %v", res.DeliveryRatio())
	}
	plain, err := Run(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != plain.Transmissions || res.Delivered != plain.Delivered {
		t.Errorf("collision-free chain should match plain simulation: %+v vs %+v",
			res.Result, plain)
	}
}

func TestCollisionStarJamsMiddle(t *testing.T) {
	// Two relays equidistant from a common 2-hop node: after the source's
	// slot both relay simultaneously and jam the far node.
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},      // source
		{ID: 1, Pos: geom.Pt(0.8, 0.5), Radius: 1},  // relay A
		{ID: 2, Pos: geom.Pt(0.8, -0.5), Radius: 1}, // relay B
		{ID: 3, Pos: geom.Pt(1.6, 0), Radius: 1},    // victim: hears both
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithCollisions(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Fatal("expected a collision at the victim node")
	}
	if res.Received[3] {
		t.Error("victim must be jammed under flooding")
	}
	if res.DeliveryRatio() >= 1 {
		t.Errorf("delivery = %v, want < 1", res.DeliveryRatio())
	}
}

// The storm thesis under collisions: forwarding-set relaying loses less
// coverage than flooding because fewer simultaneous relays fire. Compare
// totals over several random heterogeneous networks.
func TestForwardingSetsReduceCollisionDamage(t *testing.T) {
	var floodDelivered, greedyDelivered, floodCollisions, greedyCollisions int
	for seed := int64(0); seed < 10; seed++ {
		g := paperGraph(t, deploy.Heterogeneous, 12, 1000+seed)
		flood, err := RunWithCollisions(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := RunWithCollisions(g, 0, forwarding.Greedy{})
		if err != nil {
			t.Fatal(err)
		}
		floodDelivered += flood.Delivered
		greedyDelivered += grd.Delivered
		floodCollisions += flood.Collisions
		greedyCollisions += grd.Collisions
	}
	if greedyCollisions >= floodCollisions {
		t.Errorf("greedy collisions %d should be below flooding %d",
			greedyCollisions, floodCollisions)
	}
	if greedyDelivered <= floodDelivered {
		t.Errorf("greedy delivered %d should exceed flooding %d under collisions",
			greedyDelivered, floodDelivered)
	}
}

func TestCollisionSourceValidation(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := RunWithCollisions(g, 7, nil); err == nil {
		t.Error("out-of-range source must fail")
	}
}

func TestCollisionDeterministic(t *testing.T) {
	g := paperGraph(t, deploy.Homogeneous, 10, 1100)
	a, err := RunWithCollisions(g, 0, forwarding.Skyline{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithCollisions(g, 0, forwarding.Skyline{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Transmissions != b.Transmissions || a.Delivered != b.Delivered ||
		a.Collisions != b.Collisions {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}
