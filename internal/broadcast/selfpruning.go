package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// RunSelfPruning simulates the neighbor-knowledge self-pruning broadcast
// (the Wu–Li-style scheme the paper cites among alternative
// storm-mitigation algorithms): a node that first receives the message
// from p relays only if it has at least one neighbor not already covered
// by p's transmission, i.e. N(v) ⊄ N(p) ∪ {p}. Unlike forwarding-set
// (multipoint-relay) schemes, the decision is made by the receiver from
// its own 1-hop table and the sender's 1-hop table (learned from HELLO
// piggybacks) — no per-sender set selection is needed.
//
// Self-pruning always delivers to every reachable node under the
// bidirectional model: a relay decision is suppressed only when the
// sender's transmission already covered all of the receiver's neighbors.
func RunSelfPruning(g *network.Graph, source int) (Result, error) {
	if source < 0 || source >= g.Len() {
		return Result{}, fmt.Errorf("broadcast: source %d out of range [0, %d)", source, g.Len())
	}
	res := Result{Received: make([]bool, g.Len())}
	for _, d := range g.HopDistances(source) {
		if d > 0 {
			res.Reachable++
		}
	}

	type pending struct {
		node int
		hop  int
	}
	frontier := []pending{{source, 0}}
	res.Received[source] = true

	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].node < frontier[b].node })
		type arrival struct{ to, from, hop int }
		var arrivals []arrival
		for _, tx := range frontier {
			res.Transmissions++
			for _, v := range g.Neighbors(tx.node) {
				if res.Received[v] {
					res.Redundant++
					continue
				}
				arrivals = append(arrivals, arrival{v, tx.node, tx.hop + 1})
			}
		}
		var next []pending
		for _, a := range arrivals {
			if res.Received[a.to] {
				res.Redundant++
				continue
			}
			res.Received[a.to] = true
			res.Delivered++
			if a.hop > res.MaxHop {
				res.MaxHop = a.hop
			}
			if hasUncoveredNeighbor(g, a.to, a.from) {
				next = append(next, pending{a.to, a.hop})
			}
		}
		frontier = next
	}
	return res, nil
}

// hasUncoveredNeighbor reports whether v has a neighbor that is neither p
// nor a neighbor of p.
func hasUncoveredNeighbor(g *network.Graph, v, p int) bool {
	for _, w := range g.Neighbors(v) {
		if w != p && !g.IsNeighbor(p, w) {
			return true
		}
	}
	return false
}
