package broadcast

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/forwarding"
	"repro/internal/network"
)

// Lossy-link simulation: the disk model treats every link inside the
// radius as perfect, but real radios fade near the edge of their range.
// RunLossy makes each reception an independent Bernoulli trial whose
// success probability depends on the distance relative to the
// transmitter's radius. Forwarding-set schemes were engineered for
// reliable links — each 2-hop neighbor is covered by exactly one chosen
// relay — so losses cost them coverage, while flooding's redundancy buys
// robustness. The lossy experiment quantifies that trade.

// LossModel maps the distance/radius ratio q = d/r ∈ [0, 1] of a link to
// its reception probability.
type LossModel func(q float64) float64

// FringeLoss returns the standard "reliable core, linear fringe" model:
// receptions within core·r always succeed, and the success probability
// falls linearly from 1 to edge as the distance grows from core·r to r.
func FringeLoss(core, edge float64) LossModel {
	return func(q float64) float64 {
		if q <= core {
			return 1
		}
		if q >= 1 {
			return edge
		}
		frac := (q - core) / (1 - core)
		return 1 - frac*(1-edge)
	}
}

// RunLossy simulates a broadcast where each reception succeeds with the
// loss model's probability (evaluated per transmitter–receiver pair, per
// transmission). fwd may be nil for blind flooding. The rng makes runs
// reproducible.
func RunLossy(g *network.Graph, source int, fwd forwarding.Selector, loss LossModel, rng *rand.Rand) (Result, error) {
	if source < 0 || source >= g.Len() {
		return Result{}, fmt.Errorf("broadcast: source %d out of range [0, %d)", source, g.Len())
	}
	if loss == nil {
		return Result{}, fmt.Errorf("broadcast: nil loss model")
	}
	selGraph := g
	if fwd != nil && g.Model() == network.Unidirectional {
		bi, err := network.Build(g.Nodes(), network.Bidirectional)
		if err != nil {
			return Result{}, err
		}
		selGraph = bi
	}

	res := Result{Received: make([]bool, g.Len())}
	for _, d := range g.HopDistances(source) {
		if d > 0 {
			res.Reachable++
		}
	}
	type pending struct {
		node, hop int
	}
	frontier := []pending{{source, 0}}
	res.Received[source] = true

	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].node < frontier[b].node })
		type arrival struct{ to, from, hop int }
		var arrivals []arrival
		for _, tx := range frontier {
			res.Transmissions++
			txNode := g.Node(tx.node)
			for _, v := range g.Neighbors(tx.node) {
				q := txNode.Pos.Dist(g.Node(v).Pos) / txNode.Radius
				if rng.Float64() >= loss(q) {
					continue // frame lost on this link
				}
				if res.Received[v] {
					res.Redundant++
					continue
				}
				arrivals = append(arrivals, arrival{v, tx.node, tx.hop + 1})
			}
		}
		var next []pending
		for _, a := range arrivals {
			if res.Received[a.to] {
				res.Redundant++
				continue
			}
			res.Received[a.to] = true
			res.Delivered++
			if a.hop > res.MaxHop {
				res.MaxHop = a.hop
			}
			relay := true
			if fwd != nil {
				set, err := fwd.Select(selGraph, a.from)
				if err != nil {
					return Result{}, err
				}
				relay = containsID(set, a.to)
			}
			if relay {
				next = append(next, pending{a.to, a.hop})
			}
		}
		frontier = next
	}
	return res, nil
}
