package broadcast

import (
	"math/rand"
	"testing"

	"repro/internal/deploy"
	"repro/internal/forwarding"
)

func TestFringeLossShape(t *testing.T) {
	loss := FringeLoss(0.7, 0.2)
	if got := loss(0); got != 1 {
		t.Errorf("loss(0) = %v", got)
	}
	if got := loss(0.7); got != 1 {
		t.Errorf("loss at core = %v, want 1", got)
	}
	if got := loss(1); got != 0.2 {
		t.Errorf("loss at edge = %v, want 0.2", got)
	}
	if got := loss(1.5); got != 0.2 {
		t.Errorf("loss beyond edge = %v, want 0.2 (clamped)", got)
	}
	mid := loss(0.85)
	if mid <= 0.2 || mid >= 1 {
		t.Errorf("fringe midpoint = %v, want strictly between", mid)
	}
}

// With a lossless model, RunLossy must reproduce Run exactly.
func TestRunLossyPerfectMatchesRun(t *testing.T) {
	g := paperGraph(t, deploy.Heterogeneous, 10, 2000)
	perfect := FringeLoss(1, 1)
	for _, sel := range []forwarding.Selector{nil, forwarding.Greedy{}} {
		a, err := RunLossy(g, 0, sel, perfect, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(g, 0, sel)
		if err != nil {
			t.Fatal(err)
		}
		if a.Transmissions != b.Transmissions || a.Delivered != b.Delivered {
			t.Fatalf("perfect-channel lossy run diverges: %+v vs %+v", a, b)
		}
	}
}

// Under edge fading, flooding's redundancy must deliver more than the
// single-path forwarding-set schemes (aggregated over repetitions).
func TestLossyFloodingMoreRobust(t *testing.T) {
	var floodDel, greedyDel int
	loss := FringeLoss(0.5, 0.1)
	for seed := int64(0); seed < 15; seed++ {
		g := paperGraph(t, deploy.Heterogeneous, 10, 2100+seed)
		rngA := rand.New(rand.NewSource(7 * seed))
		rngB := rand.New(rand.NewSource(7 * seed))
		flood, err := RunLossy(g, 0, nil, loss, rngA)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := RunLossy(g, 0, forwarding.Greedy{}, loss, rngB)
		if err != nil {
			t.Fatal(err)
		}
		floodDel += flood.Delivered
		greedyDel += grd.Delivered
	}
	if floodDel <= greedyDel {
		t.Errorf("flooding delivered %d ≤ greedy %d under fading — redundancy should win",
			floodDel, greedyDel)
	}
}

func TestRunLossyDeterministicPerSeed(t *testing.T) {
	g := paperGraph(t, deploy.Homogeneous, 8, 2200)
	loss := FringeLoss(0.6, 0.3)
	a, err := RunLossy(g, 0, nil, loss, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLossy(g, 0, nil, loss, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Redundant != b.Redundant {
		t.Error("same seed must reproduce the same outcome")
	}
}

func TestRunLossyValidation(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := RunLossy(g, 9, nil, FringeLoss(1, 1), rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad source must fail")
	}
	if _, err := RunLossy(g, 0, nil, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil loss model must fail")
	}
}
