package broadcast_test

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
)

func chain(n int) *network.Graph {
	nodes := make([]network.Node, n)
	for i := range nodes {
		nodes[i] = network.Node{ID: i, Pos: geom.Pt(float64(i), 0), Radius: 1.2}
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		panic(err)
	}
	return g
}

// A flooding broadcast on a 5-node chain: everyone relays once.
func ExampleRun() {
	g := chain(5)
	res, err := broadcast.Run(g, 0, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tx=%d delivered=%d/%d maxhop=%d\n",
		res.Transmissions, res.Delivered, res.Reachable, res.MaxHop)
	// Output: tx=5 delivered=4/4 maxhop=4
}

// With the greedy forwarding sets the chain's last node does not relay
// (it has no 2-hop neighbors to cover).
func ExampleRun_forwardingSet() {
	g := chain(5)
	res, err := broadcast.Run(g, 0, forwarding.Greedy{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tx=%d delivered=%d/%d\n", res.Transmissions, res.Delivered, res.Reachable)
	// Output: tx=4 delivered=4/4
}

// Self-pruning on a clique: the source's transmission covers everyone, so
// every receiver suppresses its relay.
func ExampleRunSelfPruning() {
	nodes := make([]network.Node, 4)
	for i := range nodes {
		nodes[i] = network.Node{ID: i, Pos: geom.Pt(float64(i)*0.1, 0), Radius: 5}
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		panic(err)
	}
	res, err := broadcast.RunSelfPruning(g, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tx=%d delivered=%d/%d\n", res.Transmissions, res.Delivered, res.Reachable)
	// Output: tx=1 delivered=3/3
}
