package broadcast

import (
	"math/rand"
	"testing"

	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/network"
	"repro/internal/obs"
)

func benchGraph(b *testing.B, degree float64) *network.Graph {
	b.Helper()
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, degree),
		rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkRunFlooding / BenchmarkRunSkyline are the reference numbers for
// the disabled-instrumentation fast path of the simulator;
// BenchmarkRunInstrumented measures the same skyline broadcast with a live
// registry (no event sink), quantifying the per-round accounting cost.
func BenchmarkRunFlooding(b *testing.B) {
	g := benchGraph(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSkyline(b *testing.B) {
	g := benchGraph(b, 12)
	sets, err := PrecomputeSets(g, forwarding.Skyline{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunCached(g, 0, sets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunInstrumented(b *testing.B) {
	Instrument(obs.NewRegistry(), nil)
	defer Instrument(nil, nil)
	g := benchGraph(b, 12)
	sets, err := PrecomputeSets(g, forwarding.Skyline{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunCached(g, 0, sets); err != nil {
			b.Fatal(err)
		}
	}
}
