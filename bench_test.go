package mldcs

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus the scaling experiment of Chapter 4 and the ablations
// from DESIGN.md. Run everything with
//
//	go test -bench=. -benchmem
//
// Benchmarks that regenerate statistical figures (Fig5_*) use reduced
// replication counts per iteration; the CLI (cmd/mldcsim) runs the paper's
// full 200-replication versions.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/deploy"
	"repro/internal/experiments"
	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/skyline"
)

// benchFigureConfig keeps per-iteration work bounded while exercising the
// full experiment pipeline.
func benchFigureConfig() experiments.Config {
	return experiments.Config{Replications: 10, Seed: 42, Workers: 4, Degrees: []float64{10}}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	cfg := benchFigureConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := RunExperiment(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig5_1 regenerates Figure 5.1 (homogeneous average
// forwarding-set sizes, five algorithms).
func BenchmarkFig5_1(b *testing.B) { benchFigure(b, "fig5.1") }

// BenchmarkFig5_2 regenerates Figure 5.2 (homogeneous size distribution at
// mean degree 10).
func BenchmarkFig5_2(b *testing.B) { benchFigure(b, "fig5.2") }

// BenchmarkFig5_3 regenerates Figure 5.3 (homogeneous size distribution at
// mean degree 20).
func BenchmarkFig5_3(b *testing.B) { benchFigure(b, "fig5.3") }

// BenchmarkFig5_4 regenerates Figure 5.4 (heterogeneous average
// forwarding-set sizes, four algorithms).
func BenchmarkFig5_4(b *testing.B) { benchFigure(b, "fig5.4") }

// BenchmarkFig5_5 regenerates Figure 5.5 (heterogeneous size distribution
// at mean degree 10).
func BenchmarkFig5_5(b *testing.B) { benchFigure(b, "fig5.5") }

// BenchmarkFig5_6 regenerates the §5.1.2/Figure 5.6 drawback metrics
// (skyline 2-hop coverage in heterogeneous networks, repair overhead).
func BenchmarkFig5_6(b *testing.B) { benchFigure(b, "fig5.6") }

// randomLocalDisks mirrors the paper's heterogeneous local sets.
func randomLocalDisks(rng *rand.Rand, n int) []geom.Disk {
	disks := make([]geom.Disk, n)
	for i := range disks {
		r := 1 + rng.Float64()
		dist := rng.Float64() * r * 0.999
		theta := rng.Float64() * geom.TwoPi
		disks[i] = geom.Disk{C: geom.Unit(theta).Scale(dist), R: r}
	}
	return disks
}

// BenchmarkSkylineScaling is the Chapter 4 experiment (Theorem 9): the
// divide-and-conquer skyline across input sizes. ns/op should grow as
// n log n.
func BenchmarkSkylineScaling(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			disks := randomLocalDisks(rand.New(rand.NewSource(1)), n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := skyline.Compute(disks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkylineAlgorithms compares the four skyline constructions at a
// fixed size (the naive oracle's O(n² log n) shows immediately).
func BenchmarkSkylineAlgorithms(b *testing.B) {
	const n = 512
	disks := randomLocalDisks(rand.New(rand.NewSource(2)), n)
	algs := []struct {
		name string
		fn   func([]geom.Disk) (skyline.Skyline, error)
	}{
		{"dnc", skyline.Compute},
		{"incremental", skyline.ComputeIncremental},
		{"naive", skyline.ComputeNaive},
		{"parallel", func(d []geom.Disk) (skyline.Skyline, error) {
			return skyline.ComputeParallel(d, 0)
		}},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alg.fn(disks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCombine is ablation A1: the Merge re-combination step
// (§3.4 Step 3) on versus off.
func BenchmarkAblationCombine(b *testing.B) {
	const n = 2048
	disks := randomLocalDisks(rand.New(rand.NewSource(3)), n)
	b.Run("with-combine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := skyline.Compute(disks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-combine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := skyline.ComputeNoCombine(disks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOrder is ablation A2: incremental insertion in the
// decreasing-radius order used by Lemma 8's proof versus a random order.
func BenchmarkAblationOrder(b *testing.B) {
	const n = 512
	rng := rand.New(rand.NewSource(4))
	disks := randomLocalDisks(rng, n)
	decreasing := skyline.DecreasingRadiusOrder(disks)
	random := rng.Perm(n)
	b.Run("decreasing-radius", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := skyline.ComputeIncrementalOrder(disks, decreasing); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("random-order", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := skyline.ComputeIncrementalOrder(disks, random); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchNetwork(b *testing.B, model deploy.RadiusModel, degree float64) *network.Graph {
	b.Helper()
	nodes, err := deploy.Generate(deploy.PaperConfig(model, degree), rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSelectors measures a single forwarding-set selection at the
// paper's mean degree 10 for every algorithm, on the same heterogeneous
// network (calinescu gets its homogeneous counterpart).
func BenchmarkSelectors(b *testing.B) {
	het := benchNetwork(b, deploy.Heterogeneous, 10)
	hom := benchNetwork(b, deploy.Homogeneous, 10)
	cases := []struct {
		name string
		g    *network.Graph
		sel  forwarding.Selector
	}{
		{"flooding", het, forwarding.Flooding{}},
		{"skyline", het, forwarding.Skyline{}},
		{"greedy", het, forwarding.Greedy{}},
		{"optimal", het, forwarding.Optimal{}},
		{"repair", het, forwarding.SkylineRepair{}},
		{"calinescu", hom, forwarding.Calinescu{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.sel.Select(c.g, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBroadcastStorm is the §1.2 end-to-end experiment: one
// network-wide broadcast per iteration under each relaying policy.
func BenchmarkBroadcastStorm(b *testing.B) {
	for _, model := range []deploy.RadiusModel{deploy.Homogeneous, deploy.Heterogeneous} {
		g := benchNetwork(b, model, 10)
		for _, pc := range []struct {
			name string
			sel  forwarding.Selector
		}{
			{"flooding", nil},
			{"skyline", forwarding.Skyline{}},
			{"greedy", forwarding.Greedy{}},
		} {
			b.Run(model.String()+"/"+pc.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := broadcast.Run(g, 0, pc.sel); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRepair is the X1 extension benchmark: the 2-hop repair pass on
// heterogeneous networks of increasing density.
func BenchmarkRepair(b *testing.B) {
	for _, degree := range []float64{6, 12, 18} {
		g := benchNetwork(b, deploy.Heterogeneous, degree)
		b.Run(fmt.Sprintf("degree=%g", degree), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (forwarding.SkylineRepair{}).Select(g, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProtocols measures one whole-network broadcast per iteration
// for every protocol in the comparison suite (X4 in DESIGN.md).
func BenchmarkProtocols(b *testing.B) {
	g := benchNetwork(b, deploy.Heterogeneous, 10)
	cases := []struct {
		name string
		run  func() (broadcast.Result, error)
	}{
		{"self-pruning", func() (broadcast.Result, error) { return broadcast.RunSelfPruning(g, 0) }},
		{"neighbor-elim", func() (broadcast.Result, error) { return broadcast.RunNeighborElimination(g, 0) }},
		{"pdp", func() (broadcast.Result, error) { return broadcast.RunDominantPruning(g, 0, broadcast.PDP) }},
		{"tdp", func() (broadcast.Result, error) { return broadcast.RunDominantPruning(g, 0, broadcast.TDP) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollision measures the slotted collision simulation (X3).
func BenchmarkCollision(b *testing.B) {
	g := benchNetwork(b, deploy.Heterogeneous, 10)
	for _, c := range []struct {
		name string
		sel  forwarding.Selector
	}{{"flooding", nil}, {"greedy", forwarding.Greedy{}}} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := broadcast.RunWithCollisions(g, 0, c.sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactArea measures the closed-form union area (per skyline
// arc) at growing set sizes.
func BenchmarkExactArea(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		disks := randomLocalDisks(rand.New(rand.NewSource(7)), n)
		sl, err := skyline.Compute(disks)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = sl.Area(disks)
			}
		})
	}
}

// BenchmarkInsertDisk measures dynamic skyline maintenance: adding one
// disk to an existing skyline versus recomputing from scratch.
func BenchmarkInsertDisk(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(10))
	disks := randomLocalDisks(rng, n+1)
	base, err := skyline.Compute(disks[:n])
	if err != nil {
		b.Fatal(err)
	}
	b.Run("insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := skyline.InsertDisk(disks, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := skyline.Compute(disks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSkylineQueries measures the O(log n) post-construction queries.
func BenchmarkSkylineQueries(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(11))
	disks := randomLocalDisks(rng, n)
	sl, err := skyline.Compute(disks)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("contains", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sl.Contains(disks, geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2))
		}
	})
	b.Run("radial-distance", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sl.RadialDistance(disks, rng.Float64()*geom.TwoPi)
		}
	})
}

// BenchmarkMoveNode compares incremental topology maintenance against a
// full rebuild for a single node relocation — the per-HELLO-interval
// operation of a mobile network.
func BenchmarkMoveNode(b *testing.B) {
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, 10),
		rand.New(rand.NewSource(8)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.Run("incremental", func(b *testing.B) {
		g, err := network.Build(nodes, network.Bidirectional)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := rng.Intn(g.Len())
			if err := g.MoveNode(u, geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		current := append([]network.Node(nil), nodes...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := rng.Intn(len(current))
			current[u].Pos = geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5)
			if _, err := network.Build(current, network.Bidirectional); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGraphBuild measures disk-graph construction (the spatial-grid
// substrate) at the paper's densities.
func BenchmarkGraphBuild(b *testing.B) {
	for _, degree := range []float64{10, 20} {
		nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, degree),
			rand.New(rand.NewSource(6)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("degree=%g/nodes=%d", degree, len(nodes)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := network.Build(nodes, network.Bidirectional); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
