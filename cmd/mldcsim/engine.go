package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro"
	"repro/internal/deploy"
	"repro/internal/mobility"
	"repro/internal/network"
)

// engineOpts carries the -engine mode flags.
type engineOpts struct {
	nodes      int     // target network size
	degree     float64 // target mean 1-hop degree
	model      string  // "homogeneous" or "heterogeneous"
	workers    int     // engine worker count (0 = GOMAXPROCS)
	cache      bool    // enable the skyline cache
	steps      int     // mobility steps to run through the incremental path
	verify     bool    // cross-check against the sequential per-node pipeline
	contention float64 // zipf hotspot skew (0 = uniform deployment + waypoint)
	hotspots   int     // hotspot cluster count when contention > 0
	seed       int64
}

// runEngine exercises the whole-network engine from the command line: one
// full Compute over a deployment scaled to the requested size, optional
// random-waypoint steps through the incremental Update path, and an
// optional differential verification against the sequential pipeline.
func runEngine(o engineOpts) error {
	var radiusModel deploy.RadiusModel
	switch o.model {
	case "homogeneous":
		radiusModel = deploy.Homogeneous
	case "heterogeneous":
		radiusModel = deploy.Heterogeneous
	default:
		return fmt.Errorf("unknown -model %q (want homogeneous or heterogeneous)", o.model)
	}
	dcfg := deploy.PaperConfig(radiusModel, o.degree)
	// Scale the region so the density calibration yields ≈ o.nodes nodes.
	dcfg.Side = math.Sqrt(float64(o.nodes) * math.Pi * dcfg.ExpectedMinRadiusSq() / o.degree)
	rng := rand.New(rand.NewSource(o.seed))
	// -contention > 0 swaps the uniform deployment for the zipf hotspot
	// workload (skewed placement now, skewed movers in the step loop);
	// contention 0 generates byte-for-byte the uniform deployment.
	hw, err := mobility.NewHotspotWorkload(mobility.HotspotConfig{
		Deploy:     dcfg,
		Hotspots:   o.hotspots,
		Contention: o.contention,
		Spread:     0.6,
		MoveFrac:   0.02,
	}, rng)
	if err != nil {
		return err
	}
	nodes := hw.Nodes()
	if o.contention > 0 {
		fmt.Printf("workload: zipf hotspots (contention %g, %d clusters)\n", o.contention, o.hotspots)
	}

	eng := mldcs.NewEngine(mldcs.EngineConfig{Workers: o.workers, Cache: o.cache})
	start := time.Now()
	res, err := eng.Compute(nodes)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	s := res.Stats
	fmt.Printf("engine: %d nodes, %d edges, %d grid cells, %d workers\n",
		s.Nodes, s.Edges, s.Cells, s.Workers)
	fmt.Printf("compute: %v (%.0f nodes/sec)\n", elapsed.Round(time.Microsecond),
		float64(s.Nodes)/elapsed.Seconds())
	if o.cache {
		total := s.CacheHits + s.CacheMisses
		ratio := 0.0
		if total > 0 {
			ratio = float64(s.CacheHits) / float64(total)
		}
		fmt.Printf("cache: %d hits / %d misses (%.1f%% hit ratio)\n",
			s.CacheHits, s.CacheMisses, 100*ratio)
	}
	if o.verify {
		if err := verifyEngine(nodes, res); err != nil {
			return err
		}
		fmt.Println("verify: engine output element-identical to sequential per-node pipeline")
	}

	if o.steps > 0 {
		// Uniform runs walk random waypoints; contended runs use the
		// hotspot mover process, which drifts mostly hot-cluster nodes.
		var nextNodes func() ([]network.Node, error)
		if o.contention > 0 {
			movers := 1 + len(nodes)/100
			nextNodes = func() ([]network.Node, error) {
				hw.Step(movers, rng)
				return hw.Nodes(), nil
			}
		} else {
			model, err := mobility.NewModel(mobility.WaypointConfig{
				Side: dcfg.Side, SpeedMin: 0.5, SpeedMax: 1.5, PauseMax: 0.5,
			}, nodes, rng)
			if err != nil {
				return err
			}
			nextNodes = func() ([]network.Node, error) {
				model.Step(0.2)
				return model.Nodes(), nil
			}
		}
		for step := 1; step <= o.steps; step++ {
			cur, err := nextNodes()
			if err != nil {
				return err
			}
			start := time.Now()
			res, err = eng.Update(cur)
			if err != nil {
				return err
			}
			s := res.Stats
			fmt.Printf("step %d: %d moved, %d dirty (%.1f%% of network), update %v, imbalance %.2f, steals %d\n",
				step, s.Moved, s.Dirty, 100*float64(s.Dirty)/float64(s.Nodes),
				time.Since(start).Round(time.Microsecond), s.WorkerImbalance, s.Steals)
			if o.verify {
				if err := verifyEngine(cur, res); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			}
		}
		if o.verify {
			fmt.Printf("verify: %d incremental updates element-identical to sequential recompute\n", o.steps)
		}
	}
	return nil
}

// verifyEngine recomputes every forwarding set with the sequential
// pipeline and errors on the first divergence.
func verifyEngine(nodes []network.Node, res *mldcs.EngineResult) error {
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		return err
	}
	for u := range nodes {
		hub := g.Node(u)
		ids := g.Neighbors(u)
		disks := make([]mldcs.Disk, len(ids))
		for i, v := range ids {
			disks[i] = g.Node(v).Disk()
		}
		fwd, err := mldcs.ForwardingSet(hub.Disk(), disks)
		if err != nil {
			return err
		}
		want := make([]int, len(fwd))
		for i, idx := range fwd {
			want[i] = ids[idx]
		}
		got := res.Forwarding[u]
		if len(got) != len(want) {
			return fmt.Errorf("verify: node %d forwarding %v != sequential %v", u, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("verify: node %d forwarding %v != sequential %v", u, got, want)
			}
		}
	}
	return nil
}
