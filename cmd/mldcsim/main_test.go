package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro"
)

func TestParseDegrees(t *testing.T) {
	got, err := parseDegrees("4, 8,12.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, 12.5}
	if len(got) != len(want) {
		t.Fatalf("parseDegrees = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseDegrees = %v, want %v", got, want)
		}
	}
	if _, err := parseDegrees("4,x"); err == nil {
		t.Error("non-numeric degree must fail")
	}
	if _, err := parseDegrees(""); err == nil {
		t.Error("empty string must fail")
	}
}

func TestRunAnalyze(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/trace.txt"
	data := "# test\n0 0 0 1.5\n1 1 0 1.5\n2 2 0 1.5\n"
	if err := writeFile(trace, data); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze(trace, "skyline", 0); err != nil {
		t.Fatalf("analyze failed: %v", err)
	}
	if err := runAnalyze(trace, "greedy", 1); err != nil {
		t.Fatalf("analyze with greedy failed: %v", err)
	}
	if err := runAnalyze(trace, "nope", 0); err == nil {
		t.Error("unknown selector must fail")
	}
	if err := runAnalyze(trace, "skyline", 99); err == nil {
		t.Error("bad source must fail")
	}
	if err := runAnalyze(dir+"/missing.txt", "skyline", 0); err == nil {
		t.Error("missing file must fail")
	}
}

func writeFile(path, data string) error {
	return os.WriteFile(path, []byte(data), 0o644)
}

func TestRunDemoSmoke(t *testing.T) {
	if err := runDemo(3, 6, ""); err != nil {
		t.Fatalf("demo failed: %v", err)
	}
	dir := t.TempDir()
	if err := runDemo(3, 6, dir+"/out.svg"); err != nil {
		t.Fatalf("demo with SVG failed: %v", err)
	}
}

// TestSetupObs drives the observability wiring end to end: instrument,
// run an analysis (which broadcasts), finish, and check both artifacts.
func TestSetupObs(t *testing.T) {
	dir := t.TempDir()
	metricsPath := dir + "/m.json"
	eventsPath := dir + "/trace.jsonl"
	finish, err := setupObs(metricsPath, eventsPath, "")
	if err != nil {
		t.Fatal(err)
	}
	defer mldcs.Instrument(nil, nil)

	trace := dir + "/trace.txt"
	if err := writeFile(trace, "0 0 0 1.5\n1 1 0 1.5\n2 2 0 1.5\n"); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze(trace, "skyline", 0); err != nil {
		t.Fatal(err)
	}
	finish()

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics dump missing: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics dump is not JSON: %v", err)
	}
	if snap.Counters["broadcast_runs_total"] == 0 {
		t.Errorf("broadcast_runs_total = 0 after an analyzed broadcast; counters: %v", snap.Counters)
	}
	if snap.Counters["skyline_compute_total"] == 0 {
		t.Errorf("skyline_compute_total = 0 after a skyline selection; counters: %v", snap.Counters)
	}
	events, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatalf("event trace missing: %v", err)
	}
	if !bytes.Contains(events, []byte(`"type":"broadcast_round"`)) {
		t.Error("event trace has no broadcast_round events")
	}

	// No flags → no-op finish and nothing installed.
	finish2, err := setupObs("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	finish2()
}

// TestDebugServer starts the -pprof debug server on an ephemeral port and
// scrapes every mounted surface: /metrics must be Prometheus text with
// p99 series, /healthz must answer ok, and /debug/vars must be JSON.
func TestDebugServer(t *testing.T) {
	reg := mldcs.NewMetricsRegistry()
	reg.Counter("engine_compute_total").Add(7)
	reg.Timer("engine_update_seconds").Observe(3 * time.Millisecond)

	srv, err := startDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"engine_compute_total 7",
		"# TYPE engine_update_seconds_p99 gauge",
		"engine_update_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}
	if got := strings.TrimSpace(get("/healthz")); got != "ok" {
		t.Errorf("/healthz = %q, want ok", got)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	} else if _, ok := vars["mldcs_metrics"]; !ok {
		t.Error("/debug/vars does not publish mldcs_metrics")
	}

	// Shutting down and restarting within one process must not panic on a
	// duplicate expvar publish.
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	srv2, err := startDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
