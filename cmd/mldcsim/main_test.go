package main

import (
	"os"
	"testing"
)

func TestParseDegrees(t *testing.T) {
	got, err := parseDegrees("4, 8,12.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, 12.5}
	if len(got) != len(want) {
		t.Fatalf("parseDegrees = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseDegrees = %v, want %v", got, want)
		}
	}
	if _, err := parseDegrees("4,x"); err == nil {
		t.Error("non-numeric degree must fail")
	}
	if _, err := parseDegrees(""); err == nil {
		t.Error("empty string must fail")
	}
}

func TestRunAnalyze(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/trace.txt"
	data := "# test\n0 0 0 1.5\n1 1 0 1.5\n2 2 0 1.5\n"
	if err := writeFile(trace, data); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze(trace, "skyline", 0); err != nil {
		t.Fatalf("analyze failed: %v", err)
	}
	if err := runAnalyze(trace, "greedy", 1); err != nil {
		t.Fatalf("analyze with greedy failed: %v", err)
	}
	if err := runAnalyze(trace, "nope", 0); err == nil {
		t.Error("unknown selector must fail")
	}
	if err := runAnalyze(trace, "skyline", 99); err == nil {
		t.Error("bad source must fail")
	}
	if err := runAnalyze(dir+"/missing.txt", "skyline", 0); err == nil {
		t.Error("missing file must fail")
	}
}

func writeFile(path, data string) error {
	return os.WriteFile(path, []byte(data), 0o644)
}

func TestRunDemoSmoke(t *testing.T) {
	if err := runDemo(3, 6, ""); err != nil {
		t.Fatalf("demo failed: %v", err)
	}
	dir := t.TempDir()
	if err := runDemo(3, 6, dir+"/out.svg"); err != nil {
		t.Fatalf("demo with SVG failed: %v", err)
	}
}
