// Command mldcsim regenerates the paper's evaluation figures and runs the
// extension experiments from the command line.
//
// Usage:
//
//	mldcsim -exp fig5.1                     # reproduce Figure 5.1 (200 reps)
//	mldcsim -exp fig5.4 -reps 50 -seed 9    # faster, different seed
//	mldcsim -exp all                        # every experiment in sequence
//	mldcsim -exp fig5.2 -csv out.csv        # also write the series as CSV
//	mldcsim -demo -svg skyline.svg          # render a random local set's skyline
//	mldcsim -engine -nodes 100000 -steps 5 -verify  # whole-network engine + mobility
//	mldcsim -engine -contention 1.2 -hotspots 8 -steps 5  # zipf hotspot workload
//	mldcsim -exp fig5.1 -metrics-out m.json # dump engine metrics (see docs/OBSERVABILITY.md)
//	mldcsim -exp all -events trace.jsonl -pprof :6060  # event trace + live profiling
//
// Experiments: fig5.1 fig5.2 fig5.3 fig5.4 fig5.5 fig5.6 scaling
// storm-homogeneous storm-heterogeneous.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/httpserve"
	"repro/internal/obs/expo"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to run (or \"all\"); see -list")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		reps     = flag.Int("reps", 200, "replications per data point (paper: 200)")
		seed     = flag.Int64("seed", 1, "base random seed")
		workers  = flag.Int("workers", 0, "parallel replications (0 = GOMAXPROCS)")
		degrees  = flag.String("degrees", "", "comma-separated mean degrees (default 4..24 step 2)")
		csvPath  = flag.String("csv", "", "write the figure's series to this CSV file")
		jsonPath = flag.String("json", "", "write the figure as JSON to this file")
		plotPath = flag.String("plot", "", "write the figure as an SVG line chart to this file")
		bars     = flag.String("bars", "", "also render the named series as an ASCII bar chart")
		demo     = flag.Bool("demo", false, "render a random local disk set's skyline instead of an experiment")
		svgPath  = flag.String("svg", "", "SVG output path for -demo")
		demoN    = flag.Int("n", 12, "number of neighbor disks for -demo")
		scenario = flag.String("scenario", "", "run a JSON scenario file instead of -exp")
		report   = flag.String("report", "", "with -scenario: write JSON/CSV/SVG + index.md into this directory")
		analyze  = flag.String("analyze", "", "analyze a deployment trace file (id x y radius per line) instead of -exp")
		selector = flag.String("selector", "skyline", "forwarding algorithm for -analyze")
		source   = flag.Int("source", 0, "source node for -analyze")

		engineMode = flag.Bool("engine", false, "run the whole-network engine demo instead of an experiment")
		engNodes   = flag.Int("nodes", 10000, "with -engine: target network size")
		engDegree  = flag.Float64("degree", 10, "with -engine: target mean 1-hop degree")
		engModel   = flag.String("model", "heterogeneous", "with -engine: radius model (homogeneous|heterogeneous)")
		engCache   = flag.Bool("cache", true, "with -engine: enable the skyline cache")
		engSteps   = flag.Int("steps", 0, "with -engine: random-waypoint steps through the incremental path")
		engVerify  = flag.Bool("verify", false, "with -engine: cross-check output against the sequential per-node pipeline")
		engCont    = flag.Float64("contention", 0, "with -engine: zipf contention exponent — skew placement and movers into hotspots (0 = uniform)")
		engHot     = flag.Int("hotspots", 8, "with -engine: hotspot cluster count when -contention > 0")

		metricsOut = flag.String("metrics-out", "", "write the metrics registry as JSON to this file on completion")
		eventsPath = flag.String("events", "", "write a JSONL event trace (broadcast rounds, experiment runs) to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar (incl. the live metrics registry) on this address, e.g. :6060")
	)
	flag.Parse()

	finishObs, err := setupObs(*metricsOut, *eventsPath, *pprofAddr)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, id := range mldcs.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *demo {
		if err := runDemo(*seed, *demoN, *svgPath); err != nil {
			fatal(err)
		}
		finishObs()
		return
	}
	if *analyze != "" {
		if err := runAnalyze(*analyze, *selector, *source); err != nil {
			fatal(err)
		}
		finishObs()
		return
	}
	if *engineMode {
		err := runEngine(engineOpts{
			nodes:      *engNodes,
			degree:     *engDegree,
			model:      *engModel,
			workers:    *workers,
			cache:      *engCache,
			steps:      *engSteps,
			verify:     *engVerify,
			contention: *engCont,
			hotspots:   *engHot,
			seed:       *seed,
		})
		if err != nil {
			fatal(err)
		}
		finishObs()
		return
	}
	if *scenario != "" {
		data, err := os.ReadFile(*scenario)
		if err != nil {
			fatal(err)
		}
		figs, err := mldcs.RunScenario(data)
		if err != nil {
			fatal(err)
		}
		for _, fig := range figs {
			fmt.Println(fig.String())
		}
		if *report != "" {
			if err := mldcs.WriteReport(*report, figs); err != nil {
				fatal(err)
			}
			fmt.Println("report written to", *report)
		}
		finishObs()
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: mldcsim -exp <id>|all [-reps N] [-seed S] [-degrees 4,8,12] [-csv out.csv]")
		fmt.Fprintln(os.Stderr, "       mldcsim -scenario suite.json")
		fmt.Fprintln(os.Stderr, "       mldcsim -list")
		fmt.Fprintln(os.Stderr, "       mldcsim -demo [-n 12] [-svg out.svg]")
		fmt.Fprintln(os.Stderr, "       mldcsim -engine [-nodes 10000] [-degree 10] [-steps 5] [-verify]")
		os.Exit(2)
	}

	cfg := mldcs.DefaultExperimentConfig()
	cfg.Replications = *reps
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *degrees != "" {
		ds, err := parseDegrees(*degrees)
		if err != nil {
			fatal(err)
		}
		cfg.Degrees = ds
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = mldcs.ExperimentIDs()
	}
	for _, id := range ids {
		fig, err := mldcs.RunExperiment(id, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig.String())
		if *bars != "" {
			chart, err := fig.Bars(*bars, 50)
			if err != nil {
				fatal(err)
			}
			fmt.Println(chart)
		}
		if *plotPath != "" {
			path := *plotPath
			if len(ids) > 1 {
				path = strings.TrimSuffix(path, ".svg") + "-" + id + ".svg"
			}
			if err := os.WriteFile(path, []byte(mldcs.RenderFigureSVG(fig)), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *jsonPath != "" {
			path := *jsonPath
			if len(ids) > 1 {
				path = strings.TrimSuffix(path, ".json") + "-" + id + ".json"
			}
			data, err := fig.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *csvPath != "" {
			path := *csvPath
			if len(ids) > 1 {
				path = strings.TrimSuffix(path, ".csv") + "-" + id + ".csv"
			}
			if err := os.WriteFile(path, []byte(fig.Table().CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	finishObs()
}

// setupObs wires the observability flags: when any is set it creates a
// registry (and, for -events, a JSONL sink), installs them via
// mldcs.Instrument, and optionally starts the pprof/expvar debug server.
// The returned function flushes the trace and writes the registry dump; it
// must be called once on normal completion.
func setupObs(metricsOut, eventsPath, pprofAddr string) (finish func(), err error) {
	if metricsOut == "" && eventsPath == "" && pprofAddr == "" {
		return func() {}, nil
	}
	reg := mldcs.NewMetricsRegistry()
	var sink *mldcs.EventSink
	var eventsFile, metricsFile *os.File
	if eventsPath != "" {
		eventsFile, err = os.Create(eventsPath)
		if err != nil {
			return nil, err
		}
		sink = mldcs.NewEventSink(eventsFile)
	}
	if metricsOut != "" {
		// Open up front so a bad path fails before the run, not after it.
		metricsFile, err = os.Create(metricsOut)
		if err != nil {
			return nil, err
		}
	}
	mldcs.Instrument(reg, sink)
	var srv *httpserve.Server
	if pprofAddr != "" {
		srv, err = startDebugServer(pprofAddr, reg)
		if err != nil {
			return nil, err
		}
	}
	return func() {
		if srv != nil {
			if err := srv.Shutdown(5 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "mldcsim: shutting down debug server:", err)
			}
		}
		if sink != nil {
			if err := sink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "mldcsim: flushing event trace:", err)
			}
			if err := eventsFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mldcsim: closing event trace:", err)
			}
			fmt.Printf("wrote %s\n", eventsPath)
		}
		if metricsFile != nil {
			if err := reg.WriteJSON(metricsFile); err != nil {
				fatal(err)
			}
			if err := metricsFile.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", metricsOut)
		}
	}, nil
}

// startDebugServer serves the debug surface on its own mux and server —
// never the defaults, which would leak the handlers to any library that
// also uses them and could not be shut down. Routes: /debug/pprof/*,
// /debug/vars (expvar, incl. the live registry under mldcs_metrics),
// /metrics (Prometheus text exposition), and /healthz. Listen/shutdown
// semantics come from internal/httpserve (shared with mldcsd): the bind
// is synchronous so a bad address fails before the run, and the caller
// shuts the server down via (*httpserve.Server).Shutdown.
func startDebugServer(addr string, reg *mldcs.MetricsRegistry) (*httpserve.Server, error) {
	// Publish the live registry for /debug/vars readers. expvar panics on
	// duplicate names, so re-runs inside one process (tests) must skip it.
	if expvar.Get("mldcs_metrics") == nil {
		expvar.Publish("mldcs_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	expo.Mount(mux, reg)

	srv, err := httpserve.Start(addr, mux)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mldcsim: serving debug endpoints on %s (/debug/pprof, /debug/vars, /metrics, /healthz)\n",
		srv.Addr())
	return srv, nil
}

func runDemo(seed int64, n int, svgPath string) error {
	rng := rand.New(rand.NewSource(seed))
	hub := mldcs.NewDisk(0, 0, 1+rng.Float64())
	neighbors := make([]mldcs.Disk, n)
	for i := range neighbors {
		r := 1 + rng.Float64()
		maxDist := r
		if hub.R < maxDist {
			maxDist = hub.R
		}
		dist := rng.Float64() * maxDist * 0.999
		theta := rng.Float64() * 2 * math.Pi
		neighbors[i] = mldcs.Disk{
			C: mldcs.Pt(dist*math.Cos(theta), dist*math.Sin(theta)),
			R: r,
		}
	}
	cover, err := mldcs.CoverSet(hub, neighbors)
	if err != nil {
		return err
	}
	fwd, err := mldcs.ForwardingSet(hub, neighbors)
	if err != nil {
		return err
	}
	fmt.Printf("local set: hub radius %.3f, %d neighbors\n", hub.R, n)
	fmt.Printf("minimum local disk cover set (0 = hub): %v\n", cover)
	fmt.Printf("forwarding set (neighbor indices): %v — %d of %d neighbors relay\n",
		fwd, len(fwd), n)
	if svgPath != "" {
		all := append([]mldcs.Disk{hub}, neighbors...)
		sl, err := mldcs.ComputeSkyline(hub.C, all)
		if err != nil {
			return err
		}
		svg := mldcs.RenderLocalSetSVG(hub.C, all, sl)
		if err := os.WriteFile(svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}
	return nil
}

// runAnalyze loads a deployment trace and reports the chosen selector's
// forwarding set and broadcast metrics from the given source node.
func runAnalyze(path, selName string, source int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	nodes, err := mldcs.ReadDeployment(f)
	if err != nil {
		return err
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		return err
	}
	if source < 0 || source >= g.Len() {
		return fmt.Errorf("source %d out of range [0, %d)", source, g.Len())
	}
	sel, err := mldcs.SelectorByName(selName)
	if err != nil {
		return err
	}
	set, err := mldcs.SelectForwarders(g, source, sel)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d nodes; source %d has %d neighbors and %d 2-hop neighbors\n",
		g.Len(), source, g.Degree(source), len(g.TwoHop(source)))
	fmt.Printf("%s forwarding set (%d nodes): %v\n", selName, len(set), set)
	fmt.Printf("2-hop coverage: %.1f%%", mldcs.TwoHopCoverage(g, source, set)*100)
	if missed := mldcs.UncoveredTwoHop(g, source, set); len(missed) > 0 {
		fmt.Printf(" (misses %v)", missed)
	}
	fmt.Println()
	res, err := mldcs.Broadcast(g, source, sel)
	if err != nil {
		return err
	}
	fmt.Printf("broadcast: %d transmissions deliver %d of %d reachable nodes (max hop %d)\n",
		res.Transmissions, res.Delivered, res.Reachable, res.MaxHop)
	return nil
}

func parseDegrees(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad degree %q: %v", part, err)
		}
		out = append(out, d)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mldcsim:", err)
	os.Exit(1)
}
