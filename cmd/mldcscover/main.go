// Command mldcscover computes the skyline / minimum local disk cover set
// of a disk set read from a file (or stdin) and prints it in one of
// several formats.
//
// Input: one disk per line, "x y r" (whitespace- or comma-separated);
// blank lines and lines starting with '#' are ignored. The first disk is
// the hub unless -hub overrides it; every disk must contain the hub.
//
//	mldcscover -in disks.txt                 # cover-set indices
//	mldcscover -in disks.txt -format arcs    # the skyline arcs
//	mldcscover -in disks.txt -format area    # exact union area
//	mldcscover -in disks.txt -format svg > out.svg
//	echo "0 0 1.5
//	0.9 0 1.2" | mldcscover -format set
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flag"

	"repro"
)

func main() {
	var (
		inPath  = flag.String("in", "-", "input file (\"-\" = stdin)")
		format  = flag.String("format", "set", "output: set | arcs | area | svg")
		hubSpec = flag.String("hub", "", "hub point \"x,y\" (default: first disk's center)")
	)
	flag.Parse()

	in := os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	disks, err := parseDisks(in)
	if err != nil {
		fatal(err)
	}
	if len(disks) == 0 {
		fatal(fmt.Errorf("no disks in input"))
	}
	hub := disks[0].C
	if *hubSpec != "" {
		hub, err = parseHub(*hubSpec)
		if err != nil {
			fatal(err)
		}
	}
	if err := run(os.Stdout, disks, hub, *format); err != nil {
		fatal(err)
	}
}

// run computes and prints the requested view of the disk set.
func run(w io.Writer, disks []mldcs.Disk, hub mldcs.Point, format string) error {
	sl, err := mldcs.ComputeSkyline(hub, disks)
	if err != nil {
		return err
	}
	switch format {
	case "set":
		set := sl.Set()
		fmt.Fprintf(w, "cover set (%d of %d disks):", len(set), len(disks))
		for _, i := range set {
			fmt.Fprintf(w, " %d", i)
		}
		fmt.Fprintln(w)
	case "arcs":
		for _, a := range sl {
			d := disks[a.Disk]
			fmt.Fprintf(w, "%.6f %.6f disk=%d center=(%.6f,%.6f) r=%.6f\n",
				a.Start, a.End, a.Disk, d.C.X, d.C.Y, d.R)
		}
	case "area":
		area, err := mldcs.UnionArea(hub, disks)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.9f\n", area)
	case "svg":
		fmt.Fprint(w, mldcs.RenderLocalSetSVG(hub, disks, sl))
	default:
		return fmt.Errorf("unknown format %q (want set, arcs, area, or svg)", format)
	}
	return nil
}

// parseDisks reads "x y r" lines, tolerating commas and comments.
func parseDisks(r io.Reader) ([]mldcs.Disk, error) {
	var disks []mldcs.Disk
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want \"x y r\", got %q", lineNo, line)
		}
		var vals [3]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad number %q: %v", lineNo, f, err)
			}
			vals[i] = v
		}
		disks = append(disks, mldcs.NewDisk(vals[0], vals[1], vals[2]))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return disks, nil
}

func parseHub(s string) (mldcs.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return mldcs.Point{}, fmt.Errorf("bad hub %q: want \"x,y\"", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return mldcs.Point{}, fmt.Errorf("bad hub x: %v", err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return mldcs.Point{}, fmt.Errorf("bad hub y: %v", err)
	}
	return mldcs.Pt(x, y), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mldcscover:", err)
	os.Exit(1)
}
