package main

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro"
)

func TestParseDisks(t *testing.T) {
	in := `
# comment
0 0 1.5
0.9, 0, 1.2
	-0.5	0.1	1.0
`
	disks, err := parseDisks(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(disks) != 3 {
		t.Fatalf("parsed %d disks, want 3", len(disks))
	}
	if disks[1].C.X != 0.9 || disks[1].R != 1.2 {
		t.Errorf("disk 1 = %v", disks[1])
	}
	if disks[2].C.X != -0.5 || disks[2].C.Y != 0.1 {
		t.Errorf("disk 2 = %v", disks[2])
	}
}

func TestParseDisksErrors(t *testing.T) {
	if _, err := parseDisks(strings.NewReader("1 2")); err == nil {
		t.Error("short line must fail")
	}
	if _, err := parseDisks(strings.NewReader("a b c")); err == nil {
		t.Error("non-numeric must fail")
	}
	disks, err := parseDisks(strings.NewReader("# only comments\n\n"))
	if err != nil || len(disks) != 0 {
		t.Errorf("comment-only input: %v, %v", disks, err)
	}
}

func TestParseHub(t *testing.T) {
	p, err := parseHub("1.5, -2")
	if err != nil || p.X != 1.5 || p.Y != -2 {
		t.Errorf("parseHub = %v, %v", p, err)
	}
	for _, bad := range []string{"1", "1,2,3", "x,2", "1,y"} {
		if _, err := parseHub(bad); err == nil {
			t.Errorf("parseHub(%q) must fail", bad)
		}
	}
}

func TestRunFormats(t *testing.T) {
	disks := []mldcs.Disk{
		mldcs.NewDisk(0, 0, 1.5),
		mldcs.NewDisk(0.9, 0, 1.2),
		mldcs.NewDisk(0.1, 0.1, 0.3), // buried
	}
	hub := mldcs.Pt(0, 0)

	var set strings.Builder
	if err := run(&set, disks, hub, "set"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(set.String(), "cover set") {
		t.Errorf("set output: %q", set.String())
	}
	if strings.Contains(set.String(), " 2\n") {
		t.Errorf("buried disk 2 must not be in the cover: %q", set.String())
	}

	var arcs strings.Builder
	if err := run(&arcs, disks, hub, "arcs"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(arcs.String()), "\n") + 1
	if lines < 2 {
		t.Errorf("expected at least 2 arcs, got %q", arcs.String())
	}

	var area strings.Builder
	if err := run(&area, disks, hub, "area"); err != nil {
		t.Fatal(err)
	}
	var got float64
	if _, err := fmt.Sscan(area.String(), &got); err != nil {
		t.Fatalf("area output %q: %v", area.String(), err)
	}
	// Union is at least the big disk, at most the sum.
	if got < math.Pi*1.5*1.5-1e-9 || got > math.Pi*(1.5*1.5+1.2*1.2+0.09)+1e-9 {
		t.Errorf("area %v implausible", got)
	}

	var svg strings.Builder
	if err := run(&svg, disks, hub, "svg"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg.String(), "<svg") {
		t.Errorf("svg output: %q", svg.String()[:40])
	}

	if err := run(&svg, disks, hub, "nope"); err == nil {
		t.Error("unknown format must fail")
	}
	if err := run(&svg, []mldcs.Disk{mldcs.NewDisk(9, 9, 1)}, hub, "set"); err == nil {
		t.Error("disk not containing hub must fail")
	}
}
