// Command mldcsbench runs the engine scaling sweep: a cores × workers ×
// workload × contention matrix executed in-process, each cell measuring
// one Compute pass plus a run of mobility Update ticks with latency
// quantiles taken from the internal/obs histograms (engine_update_seconds)
// rather than wall-clock-over-iterations, so the tail (p99/p999) is
// visible, not just the mean. Per-worker load-imbalance stats ride along
// in every cell to diagnose skew.
//
// The sweep writes one JSON report (default BENCH_sweep.json). `benchdiff
// -append -sweep` converts it into trajectory entries keyed per (cores,
// workload, contention) and `benchdiff -check` gates on them — `make
// bench-sweep` chains all three.
//
//	mldcsbench -cores 1,2 -workers 1,2,4 -workloads uniform,zipf \
//	           -contention 1.2 -nodes 5000 -ticks 50 -benchtime 3x
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/deploy"
	"repro/internal/engine"
	"repro/internal/mobility"
	"repro/internal/obs"
)

// sweepCell is one matrix point's measurements. Tick quantiles come from
// the obs timer histogram over every Update of the cell (all reps); the
// imbalance block reports the worst tick (highest max/mean nodes ratio)
// so skew can't hide in an average.
type sweepCell struct {
	Cores      int     `json:"cores"`
	Workers    int     `json:"workers"`
	Workload   string  `json:"workload"`
	Contention float64 `json:"contention"`
	Nodes      int     `json:"nodes"`

	ComputeMS  float64 `json:"compute_ms"`
	TickP50MS  float64 `json:"tick_p50_ms"`
	TickP90MS  float64 `json:"tick_p90_ms"`
	TickP99MS  float64 `json:"tick_p99_ms"`
	TickP999MS float64 `json:"tick_p999_ms"`

	WorkerImbalance float64 `json:"worker_imbalance"`
	WorkerMaxNodes  int     `json:"worker_max_nodes"`
	WorkerMeanNodes float64 `json:"worker_mean_nodes"`
	Steals          int     `json:"steals"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
}

// sweepReport is the machine-readable output of one sweep run.
type sweepReport struct {
	TS     string      `json:"ts"`
	NumCPU int         `json:"num_cpu"`
	Ticks  int         `json:"ticks"`
	Movers int         `json:"movers"`
	Reps   int         `json:"reps"`
	Seed   int64       `json:"seed"`
	Cells  []sweepCell `json:"cells"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mldcsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "BENCH_sweep.json", "sweep report output path")
		coresFlag  = fs.String("cores", "", "comma-separated GOMAXPROCS values (default: 1 and NumCPU)")
		workersF   = fs.String("workers", "1,2,4", "comma-separated engine worker counts")
		workloadsF = fs.String("workloads", "uniform,zipf", "comma-separated workloads: uniform, zipf")
		contF      = fs.String("contention", "1.2", "comma-separated zipf contention exponents (> 0)")
		nodesF     = fs.Int("nodes", 5000, "approximate node count per deployment")
		degreeF    = fs.Float64("degree", 10, "target mean degree")
		hotspotsF  = fs.Int("hotspots", 8, "hotspot cluster count for zipf workloads")
		spreadF    = fs.Float64("spread", 0.6, "hotspot Gaussian spread (region units)")
		ticksF     = fs.Int("ticks", 50, "Update ticks measured per rep")
		moversF    = fs.Int("movers", 0, "movers per tick (default: 1% of nodes, min 1)")
		benchtime  = fs.String("benchtime", "3x", "reps per cell, Go benchtime syntax (e.g. 1x, 5x)")
		seedF      = fs.Int64("seed", 1, "base RNG seed (same deployment across all cells)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reps, err := parseBenchtime(*benchtime)
	if err != nil {
		fmt.Fprintln(stderr, "mldcsbench:", err)
		return 2
	}
	cores, err := parseInts(coresDefault(*coresFlag))
	if err != nil {
		fmt.Fprintln(stderr, "mldcsbench: -cores:", err)
		return 2
	}
	workers, err := parseInts(*workersF)
	if err != nil {
		fmt.Fprintln(stderr, "mldcsbench: -workers:", err)
		return 2
	}
	contentions, err := parseFloats(*contF)
	if err != nil {
		fmt.Fprintln(stderr, "mldcsbench: -contention:", err)
		return 2
	}
	points, err := workloadPoints(*workloadsF, contentions)
	if err != nil {
		fmt.Fprintln(stderr, "mldcsbench:", err)
		return 2
	}
	movers := *moversF
	if movers <= 0 {
		movers = max(1, *nodesF/100)
	}

	rep := sweepReport{
		TS:     time.Now().UTC().Format(time.RFC3339),
		NumCPU: runtime.NumCPU(),
		Ticks:  *ticksF,
		Movers: movers,
		Reps:   reps,
		Seed:   *seedF,
	}
	base := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(base)
	defer engine.Instrument(nil, nil)
	for _, c := range cores {
		runtime.GOMAXPROCS(c)
		for _, w := range workers {
			for _, p := range points {
				cell, err := runCell(cellConfig{
					cores: c, workers: w, point: p,
					nodes: *nodesF, degree: *degreeF,
					hotspots: *hotspotsF, spread: *spreadF,
					ticks: *ticksF, movers: movers, reps: reps, seed: *seedF,
				})
				if err != nil {
					fmt.Fprintln(stderr, "mldcsbench:", err)
					return 1
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Fprintf(stdout,
					"cores=%d workers=%d %s/c=%g: compute %.2fms tick p50 %.3fms p99 %.3fms imbalance %.2f steals %d\n",
					c, w, p.workload, p.contention, cell.ComputeMS,
					cell.TickP50MS, cell.TickP99MS, cell.WorkerImbalance, cell.Steals)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "mldcsbench:", err)
		return 1
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(stderr, "mldcsbench:", err)
			return 1
		}
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "mldcsbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %d cells to %s\n", len(rep.Cells), *out)
	return 0
}

// workloadPoint is one workload × contention coordinate of the matrix.
type workloadPoint struct {
	workload   string
	contention float64
}

// workloadPoints expands the workload and contention lists: uniform is
// always contention 0; zipf takes every positive contention value.
func workloadPoints(workloads string, contentions []float64) ([]workloadPoint, error) {
	var out []workloadPoint
	for _, w := range strings.Split(workloads, ",") {
		switch w = strings.TrimSpace(w); w {
		case "uniform":
			out = append(out, workloadPoint{workload: "uniform"})
		case "zipf":
			added := false
			for _, c := range contentions {
				if c > 0 {
					out = append(out, workloadPoint{workload: "zipf", contention: c})
					added = true
				}
			}
			if !added {
				return nil, fmt.Errorf("zipf workload needs at least one contention value > 0")
			}
		case "":
		default:
			return nil, fmt.Errorf("unknown workload %q (want uniform or zipf)", w)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no workloads selected")
	}
	return out, nil
}

type cellConfig struct {
	cores, workers int
	point          workloadPoint
	nodes          int
	degree         float64
	hotspots       int
	spread         float64
	ticks, movers  int
	reps           int
	seed           int64
}

// runCell measures one matrix cell: reps × (fresh workload + engine,
// one Compute, ticks × Step+Update), with all Update latencies pooled in
// one obs timer histogram. Compute takes the fastest rep; the imbalance
// block keeps the worst tick seen.
func runCell(cc cellConfig) (sweepCell, error) {
	reg := obs.NewRegistry()
	engine.Instrument(reg, nil)
	cell := sweepCell{
		Cores: cc.cores, Workers: cc.workers,
		Workload: cc.point.workload, Contention: cc.point.contention,
	}
	dcfg := deploy.PaperConfig(deploy.Heterogeneous, cc.degree)
	dcfg.Side = math.Sqrt(float64(cc.nodes) * math.Pi * dcfg.ExpectedMinRadiusSq() / cc.degree)
	hcfg := mobility.HotspotConfig{
		Deploy:     dcfg,
		Hotspots:   cc.hotspots,
		Contention: cc.point.contention,
		Spread:     cc.spread,
		MoveFrac:   0.02,
	}
	var hits, misses int64
	for rep := 0; rep < cc.reps; rep++ {
		w, err := mobility.NewHotspotWorkload(hcfg, rand.New(rand.NewSource(cc.seed)))
		if err != nil {
			return cell, err
		}
		e := engine.New(engine.Config{Workers: cc.workers, Cache: true})
		start := time.Now()
		res, err := e.Compute(w.Nodes())
		if err != nil {
			return cell, err
		}
		computeMS := float64(time.Since(start)) / float64(time.Millisecond)
		if rep == 0 || computeMS < cell.ComputeMS {
			cell.ComputeMS = computeMS
		}
		cell.Nodes = res.Stats.Nodes
		hits += res.Stats.CacheHits
		misses += res.Stats.CacheMisses
		mrng := rand.New(rand.NewSource(cc.seed + 1))
		for t := 0; t < cc.ticks; t++ {
			w.Step(cc.movers, mrng)
			res, err = e.Update(w.Nodes())
			if err != nil {
				return cell, err
			}
			hits += res.Stats.CacheHits
			misses += res.Stats.CacheMisses
			cell.Steals += res.Stats.Steals
			if res.Stats.WorkerImbalance > cell.WorkerImbalance {
				cell.WorkerImbalance = res.Stats.WorkerImbalance
				cell.WorkerMaxNodes = res.Stats.WorkerMaxNodes
				cell.WorkerMeanNodes = res.Stats.WorkerMeanNodes
			}
		}
	}
	snap := reg.Snapshot()
	tick := snap.Timers[engine.MetricUpdateSeconds]
	cell.TickP50MS = tick.P50 * 1e3
	cell.TickP90MS = tick.P90 * 1e3
	cell.TickP99MS = tick.P99 * 1e3
	cell.TickP999MS = tick.P999 * 1e3
	if total := hits + misses; total > 0 {
		cell.CacheHitRatio = float64(hits) / float64(total)
	}
	return cell, nil
}

// coresDefault resolves the -cores default: 1 plus the machine's core
// count when it has more than one.
func coresDefault(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if n := runtime.NumCPU(); n > 1 {
		return fmt.Sprintf("1,%d", n)
	}
	return "1"
}

// parseBenchtime accepts Go's -benchtime count form ("3x").
func parseBenchtime(s string) (int, error) {
	v, ok := strings.CutSuffix(s, "x")
	if !ok {
		return 0, fmt.Errorf("-benchtime %q: only the count form (e.g. 3x) is supported", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-benchtime %q: want a positive count like 3x", s)
	}
	return n, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("%q is not a positive integer", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("%q is not a non-negative number", f)
		}
		out = append(out, v)
	}
	return out, nil
}
