package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepSmoke runs a tiny matrix end-to-end and validates the report
// schema: every requested (cores, workers, workload, contention) cell is
// present with quantiles and imbalance stats populated.
func TestSweepSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-out", out,
		"-cores", "1",
		"-workers", "1,2",
		"-workloads", "uniform,zipf",
		"-contention", "1.2",
		"-nodes", "400",
		"-ticks", "3",
		"-benchtime", "1x",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep sweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4 (2 workers × 2 workload points)", len(rep.Cells))
	}
	type point struct {
		workers    int
		workload   string
		contention float64
	}
	want := map[point]bool{
		{1, "uniform", 0}: false, {2, "uniform", 0}: false,
		{1, "zipf", 1.2}: false, {2, "zipf", 1.2}: false,
	}
	for _, c := range rep.Cells {
		p := point{c.Workers, c.Workload, c.Contention}
		seen, ok := want[p]
		if !ok || seen {
			t.Fatalf("unexpected or duplicate cell %+v", p)
		}
		want[p] = true
		if c.Cores != 1 {
			t.Errorf("cell %+v: cores = %d, want 1", p, c.Cores)
		}
		if c.Nodes <= 0 {
			t.Errorf("cell %+v: nodes = %d", p, c.Nodes)
		}
		if !(c.TickP50MS > 0) || !(c.TickP99MS >= c.TickP50MS) {
			t.Errorf("cell %+v: bad quantiles p50=%g p99=%g", p, c.TickP50MS, c.TickP99MS)
		}
		if !(c.TickP999MS >= c.TickP90MS) {
			t.Errorf("cell %+v: p999 %g < p90 %g", p, c.TickP999MS, c.TickP90MS)
		}
		if !(c.ComputeMS > 0) {
			t.Errorf("cell %+v: compute_ms = %g", p, c.ComputeMS)
		}
		if c.Workers > 1 && !(c.WorkerImbalance >= 1) {
			t.Errorf("cell %+v: imbalance = %g, want ≥ 1 on multi-worker ticks", p, c.WorkerImbalance)
		}
	}
}

// TestSweepDeterministicWorkload pins that two runs over the same seed
// measure the same deployment (node counts equal across all cells).
func TestSweepDeterministicWorkload(t *testing.T) {
	nodes := func(seed string) int {
		out := filepath.Join(t.TempDir(), "sweep.json")
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-out", out, "-cores", "1", "-workers", "1", "-workloads", "uniform",
			"-nodes", "300", "-ticks", "2", "-benchtime", "1x", "-seed", seed,
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var rep sweepReport
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		return rep.Cells[0].Nodes
	}
	if a, b := nodes("7"), nodes("7"); a != b {
		t.Errorf("same seed gave %d vs %d nodes", a, b)
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-benchtime", "3s"},
		{"-workers", "0"},
		{"-workloads", "gaussian"},
		{"-workloads", "zipf", "-contention", "0"},
		{"-cores", "-1"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
		if stderr.Len() == 0 {
			t.Errorf("args %v: no error message", args)
		}
	}
}

func TestWorkloadPoints(t *testing.T) {
	pts, err := workloadPoints("uniform,zipf", []float64{0, 0.8, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3 (uniform + two zipf)", len(pts))
	}
	if pts[0].workload != "uniform" || pts[0].contention != 0 {
		t.Errorf("first point = %+v, want uniform/0", pts[0])
	}
	if pts[1].contention != 0.8 || pts[2].contention != 1.5 {
		t.Errorf("zipf points = %+v, %+v", pts[1], pts[2])
	}
	if _, err := workloadPoints("", nil); err == nil {
		t.Error("empty workload list accepted")
	}
}

func TestParseBenchtime(t *testing.T) {
	if n, err := parseBenchtime("5x"); err != nil || n != 5 {
		t.Errorf("parseBenchtime(5x) = %d, %v", n, err)
	}
	for _, bad := range []string{"", "x", "0x", "-2x", "1s", "2"} {
		if _, err := parseBenchtime(bad); err == nil {
			t.Errorf("parseBenchtime(%q) accepted", bad)
		}
	}
}

// TestSweepOutputMentionsCells sanity-checks the human-readable progress
// lines so CI logs stay greppable.
func TestSweepOutputMentionsCells(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-out", out, "-cores", "1", "-workers", "1", "-workloads", "uniform",
		"-nodes", "300", "-ticks", "2", "-benchtime", "1x",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "cores=1 workers=1 uniform/c=0") {
		t.Errorf("progress line missing:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "wrote 1 cells") {
		t.Errorf("summary line missing:\n%s", stdout.String())
	}
}
