package main

import (
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestRunServeDrainExit boots the real command on an ephemeral port,
// feeds it one batch, queries it, then delivers SIGTERM and expects a
// clean drain: exit 0 with the listener gone.
func TestRunServeDrainExit(t *testing.T) {
	// Capture stderr to learn the resolved address.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = oldStderr }()

	sigs := make(chan os.Signal, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code = run([]string{"-addr", "127.0.0.1:0", "-queue", "8"}, sigs)
	}()

	// Read stderr until the serving line appears.
	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc string
		re := regexp.MustCompile(`serving on (\S+)`)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				acc += string(buf[:n])
				if m := re.FindStringSubmatch(acc); m != nil {
					select {
					case addrCh <- m[1]:
					default:
					}
				}
			}
			if err != nil {
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server never reported its address")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/deltas", "application/json",
		strings.NewReader(`{"deltas":[{"op":"join","node":5,"x":0,"y":0,"r":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 202 {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wait for convergence, then confirm the query surface.
	deadline := time.Now().Add(5 * time.Second)
	for {
		er, err := http.Get(base + "/v1/epoch")
		if err != nil {
			t.Fatal(err)
		}
		var ep struct {
			AppliedSeq  uint64 `json:"applied_seq"`
			AcceptedSeq uint64 `json:"accepted_seq"`
		}
		if err := json.NewDecoder(er.Body).Decode(&ep); err != nil {
			t.Fatal(err)
		}
		er.Body.Close()
		if ep.AppliedSeq >= ep.AcceptedSeq && ep.AppliedSeq > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	qr, err := http.Get(base + "/v1/forwarding?node=5")
	if err != nil || qr.StatusCode != 200 {
		t.Fatalf("query: %v %v", qr.StatusCode, err)
	}
	qr.Body.Close()

	sigs <- syscall.SIGTERM
	wg.Wait()
	w.Close()
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still up after drain")
	}
}

func TestRunBadFlags(t *testing.T) {
	oldStderr := os.Stderr
	devnull, _ := os.Open(os.DevNull)
	os.Stderr = devnull
	defer func() { os.Stderr = oldStderr; devnull.Close() }()
	if code := run([]string{"-definitely-not-a-flag"}, make(chan os.Signal, 1)); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.256.256.256:1"}, make(chan os.Signal, 1)); code != 1 {
		t.Fatalf("bad addr exit = %d, want 1", code)
	}
}
