// Command mldcsd runs the long-running MLDCS service: it ingests streamed
// mobility deltas over HTTP and serves forwarding-set / skyline queries
// from epoch snapshots, with backpressure on ingest and Prometheus-style
// metrics on the same port. See docs/SERVICE.md for the API.
//
// Usage:
//
//	mldcsd                          # serve on :7440 with defaults
//	mldcsd -addr 127.0.0.1:0        # ephemeral port (printed on stderr)
//	mldcsd -queue 512 -coalesce 32  # deeper ingest buffer, bigger apply groups
//	mldcsd -events trace.jsonl      # JSONL event trace (engine fallbacks, spans)
//
// SIGINT/SIGTERM trigger a graceful drain: ingest is refused (503),
// accepted batches finish applying, in-flight queries complete, then the
// process exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/httpserve"
	"repro/internal/mldcsd"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], make(chan os.Signal, 1)))
}

// run is main with its exit code and signal source injectable for tests.
func run(args []string, sigs chan os.Signal) int {
	fs := flag.NewFlagSet("mldcsd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":7440", "HTTP listen address")
		queue      = fs.Int("queue", 128, "ingest queue depth (batches); full queue answers 429")
		coalesce   = fs.Int("coalesce", 16, "max queued batches folded into one engine pass")
		maxBatch   = fs.Int("max-batch", 4096, "max deltas per ingest batch")
		maxBody    = fs.Int64("max-body", 1<<20, "max ingest body bytes")
		workers    = fs.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
		noCache    = fs.Bool("no-cache", false, "disable the engine skyline cache")
		eventsPath = fs.String("events", "", "write a JSONL event trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg := obs.NewRegistry()
	var sink *obs.EventSink
	var eventsFile *os.File
	if *eventsPath != "" {
		var err error
		eventsFile, err = os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mldcsd:", err)
			return 1
		}
		sink = obs.NewEventSink(eventsFile)
	}
	// Engine/skyline/broadcast metrics land in the same registry the
	// service scrapes, so /metrics carries both layers.
	mldcs.Instrument(reg, sink)

	s := mldcsd.New(mldcsd.Config{
		QueueDepth:     *queue,
		Coalesce:       *coalesce,
		MaxBatchDeltas: *maxBatch,
		MaxBodyBytes:   *maxBody,
		EngineWorkers:  *workers,
		DisableCache:   *noCache,
		Registry:       reg,
	})
	srv, err := httpserve.Start(*addr, s.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mldcsd:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "mldcsd: serving on %s (/v1/deltas, /v1/forwarding, /v1/skyline, /v1/state, /v1/epoch, /metrics, /healthz)\n",
		srv.Addr())

	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "mldcsd: %v: draining\n", sig)

	// Graceful drain: stop admitting, apply the backlog, then stop the
	// listener so late queries still read the converged state.
	s.BeginDrain()
	code := 0
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mldcsd:", err)
		code = 1
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "mldcsd: shutdown:", err)
		code = 1
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "mldcsd: flushing events:", err)
			code = 1
		}
		if err := eventsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mldcsd: closing events:", err)
			code = 1
		}
	}
	return code
}
