// Command mldcslint runs the repository's go/analysis lint suite
// (internal/analysis): project-specific analyzers that machine-check the
// geometry, numerics, concurrency, and observability invariants
// documented in docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	mldcslint [-run name,name,...] [-json] [-github] [-debug] [-tags list] [packages]
//
// Packages default to ./... — the whole module. The exit code is 0 when
// the tree is clean (suppressed findings do not count), 1 when any
// analyzer reported an unsuppressed diagnostic, and 2 when loading or
// analysis itself failed.
//
// -json emits one JSON object per diagnostic per line (file, line, col,
// analyzer, message, allowed) instead of the human format; findings
// suppressed by //mldcslint:allow are included with "allowed": true so
// CI artifacts record the allow state. -github additionally prints
// GitHub Actions ::error workflow commands for unsuppressed findings so
// they surface as PR annotations. -debug reports per-analyzer wall time
// on stderr.
//
// It replaces scripts/lint-eps.sh: where the grep matched single-line
// token patterns, the analyzers here resolve identifiers through the type
// checker, so aliased imports, multi-line comparisons, and locally
// propagated tolerances are all caught.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	xanalysis "golang.org/x/tools/go/analysis"

	mldcs "repro/internal/analysis"
	"repro/internal/analysis/checker"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiag is the -json wire format: one object per line (JSONL), stable
// field names for CI tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("mldcslint", flag.ExitOnError)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON, one object per line")
	github := fs.Bool("github", false, "emit GitHub Actions ::error annotations for findings")
	debug := fs.Bool("debug", false, "report per-analyzer wall time on stderr")
	tags := fs.String("tags", "", "build tags to apply when loading packages")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mldcslint [-run name,...] [-list] [-json] [-github] [-debug] [-tags list] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the mldcslint analyzer suite (docs/STATIC_ANALYSIS.md) over the\n")
		fmt.Fprintf(fs.Output(), "named packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := mldcs.All()
	if *list {
		for _, a := range suite {
			title, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-15s %s\n", a.Name, title)
		}
		return 0
	}
	if *runList != "" {
		byName := map[string]*xanalysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*xanalysis.Analyzer
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mldcslint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := checker.LoadTags(patterns, *tags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mldcslint: %v\n", err)
		return 2
	}
	diags, stats, err := checker.RunSuite(suite, pkgs, checker.NewFactStore())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mldcslint: %v\n", err)
		return 2
	}

	findings := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if !d.Allowed {
			findings++
		}
		switch {
		case *asJSON:
			enc.Encode(jsonDiag{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Allowed:  d.Allowed,
			})
		case !d.Allowed:
			fmt.Println(d)
		}
		if *github && !d.Allowed {
			// Workflow commands require %, \r, \n escaped in the message.
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").
				Replace(fmt.Sprintf("[%s] %s", d.Analyzer, d.Message))
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n",
				d.Position.Filename, d.Position.Line, d.Position.Column, msg)
		}
	}

	if *debug {
		names := make([]string, 0, len(stats.Analyzer))
		for name := range stats.Analyzer {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			return stats.Analyzer[names[i]] > stats.Analyzer[names[j]]
		})
		fmt.Fprintf(os.Stderr, "mldcslint: analyzed %d package(s), one load shared by %d analyzer(s)\n",
			stats.Packages, len(suite))
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "  %-15s %v\n", name, stats.Analyzer[name])
		}
	}

	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mldcslint: %d finding(s); see docs/STATIC_ANALYSIS.md for the policy and the //mldcslint:allow escape hatch\n", findings)
		return 1
	}
	return 0
}
