// Command mldcslint runs the repository's go/analysis lint suite
// (internal/analysis): project-specific analyzers that machine-check the
// geometry, numerics, and observability invariants documented in
// docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	mldcslint [-run name,name,...] [packages]
//
// Packages default to ./... — the whole module. The exit code is 0 when
// the tree is clean, 1 when any analyzer reported a diagnostic, and 2
// when loading or analysis itself failed.
//
// It replaces scripts/lint-eps.sh: where the grep matched single-line
// token patterns, the analyzers here resolve identifiers through the type
// checker, so aliased imports, multi-line comparisons, and locally
// propagated tolerances are all caught.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	xanalysis "golang.org/x/tools/go/analysis"

	mldcs "repro/internal/analysis"
	"repro/internal/analysis/checker"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mldcslint", flag.ExitOnError)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mldcslint [-run name,...] [-list] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the mldcslint analyzer suite (docs/STATIC_ANALYSIS.md) over the\n")
		fmt.Fprintf(fs.Output(), "named packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := mldcs.All()
	if *list {
		for _, a := range suite {
			title, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-15s %s\n", a.Name, title)
		}
		return 0
	}
	if *runList != "" {
		byName := map[string]*xanalysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*xanalysis.Analyzer
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mldcslint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := checker.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mldcslint: %v\n", err)
		return 2
	}
	diags, err := checker.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mldcslint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mldcslint: %d finding(s); see docs/STATIC_ANALYSIS.md for the policy and the //mldcslint:allow escape hatch\n", len(diags))
		return 1
	}
	return 0
}
