// Command benchdiff maintains and gates on the longitudinal benchmark
// trajectory results/BENCH_trajectory.jsonl: an append-only JSONL history
// of benchmark runs, one line per (source, workload) configuration, each
// carrying the run's wall time, latency quantiles, core/worker counts,
// and git SHA.
//
// Two modes:
//
//	benchdiff -append -engine BENCH_engine.json -skyline BENCH_skyline.json \
//	          -trajectory results/BENCH_trajectory.jsonl -sha $(git rev-parse --short HEAD)
//	    Convert the machine-readable BENCH_*.json reports into trajectory
//	    entries and append them (make bench / make bench-skyline do this).
//	    -sweep BENCH_sweep.json additionally converts a cmd/mldcsbench
//	    scaling sweep, one entry per (cores, workload, contention) cell
//	    (make bench-sweep does this).
//
//	benchdiff -check -trajectory results/BENCH_trajectory.jsonl [-threshold 1.30]
//	    For every configuration key (source, workload, nodes, num_cpu,
//	    gomaxprocs, workers), compare the most recent entry against the
//	    median of its predecessors and exit non-zero if it is more than
//	    threshold× slower. The trajectory — not a single run — is the
//	    regression gate: one noisy historical run cannot flip the verdict,
//	    and runs from machines with different core counts or a different
//	    GOMAXPROCS clamp never compare. (Older lines carry the legacy
//	    single "cores" field, which conflated the two; it stays part of
//	    the key, so legacy and current lines form disjoint groups instead
//	    of silently comparing.)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// entry is one trajectory line. MS is the configuration's primary
// latency: whole-network engine wall time for engine entries, per-call
// ComputeInto time for skyline entries.
type entry struct {
	TS     string `json:"ts,omitempty"`
	SHA    string `json:"sha,omitempty"`
	Source string `json:"source"`

	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	// Cores is the legacy machine descriptor (conflated NumCPU with
	// GOMAXPROCS); retained so old trajectory lines round-trip and key
	// separately from current ones.
	Cores         int     `json:"cores,omitempty"`
	NumCPU        int     `json:"num_cpu,omitempty"`
	Gomaxprocs    int     `json:"gomaxprocs,omitempty"`
	Workers       int     `json:"workers"`
	MS            float64 `json:"ms"`
	TickP99MS     float64 `json:"tick_p99_ms,omitempty"`
	SequentialMS  float64 `json:"sequential_ms,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
	CacheHitRatio float64 `json:"cache_hit_ratio,omitempty"`
	NodeP50US     float64 `json:"node_p50_us,omitempty"`
	NodeP90US     float64 `json:"node_p90_us,omitempty"`
	NodeP99US     float64 `json:"node_p99_us,omitempty"`
	NodeP999US    float64 `json:"node_p999_us,omitempty"`
	// Sweep-only extras (mldcsbench): the cell's whole-network Compute
	// time, worker load imbalance (max/mean nodes, worst tick), and
	// work-stealing volume.
	ComputeMS       float64 `json:"compute_ms,omitempty"`
	WorkerImbalance float64 `json:"worker_imbalance,omitempty"`
	Steals          int     `json:"steals,omitempty"`
}

// key is the comparison unit: entries only ever compare within the same
// workload shape on the same machine class under the same parallelism
// cap. Legacy entries (Cores set, NumCPU/Gomaxprocs zero) and current
// ones (the reverse) can never collide.
type key struct {
	Source     string
	Workload   string
	Nodes      int
	Cores      int
	NumCPU     int
	Gomaxprocs int
	Workers    int
}

func (e entry) key() key {
	return key{e.Source, e.Workload, e.Nodes, e.Cores, e.NumCPU, e.Gomaxprocs, e.Workers}
}

// engineReport mirrors the BENCH_engine.json schema written by
// TestEngineBenchReport.
type engineReport struct {
	Nodes      int `json:"nodes"`
	NumCPU     int `json:"num_cpu"`
	Gomaxprocs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	Workloads  []struct {
		Workload      string  `json:"workload"`
		Nodes         int     `json:"nodes"`
		Workers       int     `json:"workers"`
		SequentialMS  float64 `json:"sequential_ms"`
		EngineMS      float64 `json:"engine_ms"`
		Speedup       float64 `json:"speedup"`
		CacheHitRatio float64 `json:"cache_hit_ratio"`
		NodeP50US     float64 `json:"node_p50_us"`
		NodeP90US     float64 `json:"node_p90_us"`
		NodeP99US     float64 `json:"node_p99_us"`
		NodeP999US    float64 `json:"node_p999_us"`
	} `json:"workloads"`
	Update []struct {
		Workload  string  `json:"workload"`
		Nodes     int     `json:"nodes"`
		Workers   int     `json:"workers"`
		TickP50MS float64 `json:"tick_p50_ms"`
		TickP99MS float64 `json:"tick_p99_ms"`
	} `json:"update"`
}

// sweepReport mirrors the BENCH_sweep.json schema written by
// cmd/mldcsbench. Every cell becomes one trajectory entry keyed per
// (cores, workload, contention): the cell's GOMAXPROCS lands in
// gomaxprocs and the contention exponent is folded into the workload
// string, so the existing per-key gate compares like against like.
type sweepReport struct {
	NumCPU int `json:"num_cpu"`
	Cells  []struct {
		Cores           int     `json:"cores"`
		Workers         int     `json:"workers"`
		Workload        string  `json:"workload"`
		Contention      float64 `json:"contention"`
		Nodes           int     `json:"nodes"`
		ComputeMS       float64 `json:"compute_ms"`
		TickP50MS       float64 `json:"tick_p50_ms"`
		TickP99MS       float64 `json:"tick_p99_ms"`
		WorkerImbalance float64 `json:"worker_imbalance"`
		Steals          int     `json:"steals"`
		CacheHitRatio   float64 `json:"cache_hit_ratio"`
	} `json:"cells"`
}

// skylineReport mirrors the BENCH_skyline.json schema written by
// TestSkylineBenchReport.
type skylineReport struct {
	NumCPU     int `json:"num_cpu"`
	Gomaxprocs int `json:"gomaxprocs"`
	Sizes      []struct {
		N                 int     `json:"n"`
		ComputeIntoNsOp   float64 `json:"compute_into_ns_op"`
		ComputeIntoAllocs float64 `json:"compute_into_allocs_op"`
	} `json:"sizes"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		doAppend   = fs.Bool("append", false, "append BENCH report(s) to the trajectory")
		doCheck    = fs.Bool("check", false, "check the latest entry of each configuration against its history")
		trajectory = fs.String("trajectory", "results/BENCH_trajectory.jsonl", "trajectory JSONL path")
		enginePath = fs.String("engine", "", "with -append: BENCH_engine.json to convert")
		skyPath    = fs.String("skyline", "", "with -append: BENCH_skyline.json to convert")
		sweepPath  = fs.String("sweep", "", "with -append: BENCH_sweep.json (mldcsbench) to convert")
		sha        = fs.String("sha", "", "with -append: git SHA to stamp on the entries")
		ts         = fs.String("ts", "", "with -append: RFC3339 timestamp (default: now, UTC)")
		threshold  = fs.Float64("threshold", 1.30, "with -check: fail when latest > threshold × median of prior runs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *doAppend == *doCheck:
		fmt.Fprintln(stderr, "benchdiff: exactly one of -append or -check is required")
		fs.Usage()
		return 2
	case *doAppend:
		if *enginePath == "" && *skyPath == "" && *sweepPath == "" {
			fmt.Fprintln(stderr, "benchdiff: -append needs -engine, -skyline, and/or -sweep")
			return 2
		}
		stamp := *ts
		if stamp == "" {
			stamp = time.Now().UTC().Format(time.RFC3339)
		}
		if err := appendReports(*trajectory, *enginePath, *skyPath, *sweepPath, *sha, stamp, stdout); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 1
		}
		return 0
	default:
		regressions, err := check(*trajectory, *threshold, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 1
		}
		if regressions > 0 {
			fmt.Fprintf(stderr, "benchdiff: %d regression(s) above %.2fx\n", regressions, *threshold)
			return 1
		}
		return 0
	}
}

// appendReports converts the given BENCH reports to entries and appends
// them to the trajectory file, creating it (and its directory) if needed.
func appendReports(trajectory, enginePath, skyPath, sweepPath, sha, ts string, stdout io.Writer) error {
	var entries []entry
	if enginePath != "" {
		es, err := engineEntries(enginePath, sha, ts)
		if err != nil {
			return err
		}
		entries = append(entries, es...)
	}
	if skyPath != "" {
		es, err := skylineEntries(skyPath, sha, ts)
		if err != nil {
			return err
		}
		entries = append(entries, es...)
	}
	if sweepPath != "" {
		es, err := sweepEntries(sweepPath, sha, ts)
		if err != nil {
			return err
		}
		entries = append(entries, es...)
	}
	if err := os.MkdirAll(filepath.Dir(trajectory), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(trajectory, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "appended %d entries to %s\n", len(entries), trajectory)
	return f.Close()
}

func engineEntries(path, sha, ts string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep engineReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var out []entry
	for _, w := range rep.Workloads {
		out = append(out, entry{
			TS: ts, SHA: sha,
			Source:        "engine",
			Workload:      w.Workload,
			Nodes:         w.Nodes,
			NumCPU:        rep.NumCPU,
			Gomaxprocs:    rep.Gomaxprocs,
			Workers:       w.Workers,
			MS:            w.EngineMS,
			SequentialMS:  w.SequentialMS,
			Speedup:       w.Speedup,
			CacheHitRatio: w.CacheHitRatio,
			NodeP50US:     w.NodeP50US,
			NodeP90US:     w.NodeP90US,
			NodeP99US:     w.NodeP99US,
			NodeP999US:    w.NodeP999US,
		})
	}
	// Update rows gate on the median tick (MS = tick_p50_ms); the p99 tail
	// rides along for inspection.
	for _, u := range rep.Update {
		out = append(out, entry{
			TS: ts, SHA: sha,
			Source:     "engine",
			Workload:   u.Workload,
			Nodes:      u.Nodes,
			NumCPU:     rep.NumCPU,
			Gomaxprocs: rep.Gomaxprocs,
			Workers:    u.Workers,
			MS:         u.TickP50MS,
			TickP99MS:  u.TickP99MS,
		})
	}
	return out, nil
}

func skylineEntries(path, sha, ts string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep skylineReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var out []entry
	for _, s := range rep.Sizes {
		out = append(out, entry{
			TS: ts, SHA: sha,
			Source:     "skyline",
			Workload:   fmt.Sprintf("compute_into/n=%d", s.N),
			Nodes:      s.N,
			NumCPU:     rep.NumCPU,
			Gomaxprocs: rep.Gomaxprocs,
			Workers:    1,
			MS:         s.ComputeIntoNsOp / 1e6,
		})
	}
	return out, nil
}

// sweepEntries converts a mldcsbench sweep report. Each cell yields one
// entry gating on the tick p50 (MS); compute time and imbalance ride
// along. The trajectory key becomes (sweep, workload/c=<contention>,
// nodes, num_cpu, gomaxprocs=cores, workers) — exactly the per-(cores,
// workload, contention) comparison unit the sweep matrix calls for.
func sweepEntries(path, sha, ts string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep sweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var out []entry
	for _, c := range rep.Cells {
		out = append(out, entry{
			TS: ts, SHA: sha,
			Source:          "sweep",
			Workload:        fmt.Sprintf("%s/c=%g", c.Workload, c.Contention),
			Nodes:           c.Nodes,
			NumCPU:          rep.NumCPU,
			Gomaxprocs:      c.Cores,
			Workers:         c.Workers,
			MS:              c.TickP50MS,
			TickP99MS:       c.TickP99MS,
			ComputeMS:       c.ComputeMS,
			CacheHitRatio:   c.CacheHitRatio,
			WorkerImbalance: c.WorkerImbalance,
			Steals:          c.Steals,
		})
	}
	return out, nil
}

// check reads the trajectory and compares, per configuration key, the
// latest entry against the median of all earlier ones. Returns the number
// of regressions. Keys with a single entry have no baseline and pass.
func check(trajectory string, threshold float64, stdout io.Writer) (int, error) {
	f, err := os.Open(trajectory)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	groups := make(map[key][]entry)
	var order []key
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return 0, fmt.Errorf("%s:%d: %w", trajectory, line, err)
		}
		k := e.key()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if line == 0 {
		return 0, fmt.Errorf("%s is empty", trajectory)
	}
	regressions := 0
	for _, k := range order {
		es := groups[k]
		latest := es[len(es)-1]
		if len(es) < 2 {
			fmt.Fprintf(stdout, "SKIP %s/%s nodes=%d %s workers=%d: only one run, no baseline\n",
				k.Source, k.Workload, k.Nodes, machine(k), k.Workers)
			continue
		}
		base := median(es[:len(es)-1])
		verdict := "ok"
		if latest.MS > threshold*base {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%s %s/%s nodes=%d %s workers=%d: latest %.3fms vs median %.3fms (%d prior, %.2fx)\n",
			verdict, k.Source, k.Workload, k.Nodes, machine(k), k.Workers,
			latest.MS, base, len(es)-1, latest.MS/base)
	}
	return regressions, nil
}

// machine renders a key's machine descriptor: legacy lines only carried
// the conflated "cores" field, current ones carry num_cpu + gomaxprocs.
func machine(k key) string {
	if k.NumCPU == 0 && k.Gomaxprocs == 0 {
		return fmt.Sprintf("cores=%d", k.Cores)
	}
	return fmt.Sprintf("num_cpu=%d gomaxprocs=%d", k.NumCPU, k.Gomaxprocs)
}

// median returns the median MS of the entries (callers guarantee at least
// one).
func median(es []entry) float64 {
	ms := make([]float64, len(es))
	for i, e := range es {
		ms[i] = e.MS
	}
	sort.Float64s(ms)
	if n := len(ms); n%2 == 1 {
		return ms[n/2]
	} else {
		return (ms[n/2-1] + ms[n/2]) / 2
	}
}
