package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLines(t *testing.T, path string, entries []entry) {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func baseEntry(ms float64) entry {
	return entry{
		Source: "engine", Workload: "uniform-random",
		Nodes: 100000, Cores: 1, Workers: 1, MS: ms,
	}
}

// TestCheckPassesStableHistory: a steady trajectory is not a regression.
func TestCheckPassesStableHistory(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "traj.jsonl")
	writeLines(t, traj, []entry{baseEntry(100), baseEntry(104), baseEntry(98), baseEntry(101)})
	var out, errb bytes.Buffer
	if code := run([]string{"-check", "-trajectory", traj}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ok engine/uniform-random") {
		t.Errorf("missing ok verdict:\n%s", out.String())
	}
}

// TestCheckFlagsSyntheticRegression: the acceptance criterion — an
// injected slowdown makes benchdiff exit non-zero.
func TestCheckFlagsSyntheticRegression(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "traj.jsonl")
	writeLines(t, traj, []entry{baseEntry(100), baseEntry(102), baseEntry(98), baseEntry(250)})
	var out, errb bytes.Buffer
	if code := run([]string{"-check", "-trajectory", traj}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 on a 2.5x regression\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION engine/uniform-random") {
		t.Errorf("missing regression verdict:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 regression(s)") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestCheckThresholdFlag: the threshold is configurable, and a slowdown
// below it passes.
func TestCheckThresholdFlag(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "traj.jsonl")
	writeLines(t, traj, []entry{baseEntry(100), baseEntry(100), baseEntry(140)})
	var out bytes.Buffer
	if code := run([]string{"-check", "-trajectory", traj, "-threshold", "1.5"}, &out, io.Discard); code != 0 {
		t.Fatalf("exit = %d, want 0 at threshold 1.5", code)
	}
	if code := run([]string{"-check", "-trajectory", traj, "-threshold", "1.2"}, &out, io.Discard); code != 1 {
		t.Fatalf("exit = %d, want 1 at threshold 1.2", code)
	}
}

// TestCheckGroupsByConfig: runs from different machine shapes never
// compare — a slow 1-core run after fast 8-core runs is not a regression.
func TestCheckGroupsByConfig(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "traj.jsonl")
	fast := baseEntry(50)
	fast.Cores, fast.Workers = 8, 8
	fast2 := fast
	fast2.MS = 52
	writeLines(t, traj, []entry{fast, fast2, baseEntry(400)})
	var out bytes.Buffer
	if code := run([]string{"-check", "-trajectory", traj}, &out, io.Discard); code != 0 {
		t.Fatalf("exit = %d, want 0 (different cores are different groups)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "SKIP engine/uniform-random nodes=100000 cores=1") {
		t.Errorf("single-entry group must be skipped:\n%s", out.String())
	}
}

// TestCheckLegacyCoresNeverCompare: old trajectory lines carry the
// conflated "cores" field, current ones carry num_cpu + gomaxprocs; even
// with every other key field equal they must form disjoint groups, so a
// slow first run under the new schema is a fresh baseline, not a
// regression against legacy history.
func TestCheckLegacyCoresNeverCompare(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "traj.jsonl")
	current := baseEntry(400)
	current.Cores = 0
	current.NumCPU, current.Gomaxprocs = 1, 1
	writeLines(t, traj, []entry{baseEntry(50), baseEntry(52), current})
	var out bytes.Buffer
	if code := run([]string{"-check", "-trajectory", traj}, &out, io.Discard); code != 0 {
		t.Fatalf("exit = %d, want 0 (legacy and current lines are different groups)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "SKIP engine/uniform-random nodes=100000 num_cpu=1 gomaxprocs=1") {
		t.Errorf("current-schema group must be a fresh baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok engine/uniform-random nodes=100000 cores=1") {
		t.Errorf("legacy group must keep its cores= label:\n%s", out.String())
	}
}

// TestCheckSingleEntryPasses: a freshly seeded trajectory has no baseline
// and must pass.
func TestCheckSingleEntryPasses(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "traj.jsonl")
	writeLines(t, traj, []entry{baseEntry(100)})
	var out bytes.Buffer
	if code := run([]string{"-check", "-trajectory", traj}, &out, io.Discard); code != 0 {
		t.Fatalf("exit = %d, want 0 for a single-entry trajectory", code)
	}
}

func TestCheckEmptyOrMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", "-trajectory", empty}, io.Discard, io.Discard); code != 1 {
		t.Errorf("empty trajectory: exit = %d, want 1", code)
	}
	if code := run([]string{"-check", "-trajectory", filepath.Join(dir, "missing.jsonl")}, io.Discard, io.Discard); code != 1 {
		t.Errorf("missing trajectory: exit = %d, want 1", code)
	}
}

// TestAppendFromReports drives -append over real-schema BENCH reports and
// re-reads the trajectory both as JSON and through -check.
func TestAppendFromReports(t *testing.T) {
	dir := t.TempDir()
	enginePath := filepath.Join(dir, "BENCH_engine.json")
	skyPath := filepath.Join(dir, "BENCH_skyline.json")
	traj := filepath.Join(dir, "results", "traj.jsonl")

	engineJSON := `{
  "nodes": 100000, "num_cpu": 8, "gomaxprocs": 4, "workers": 1,
  "workloads": [
    {"workload": "uniform-random", "nodes": 100000, "workers": 1,
     "sequential_ms": 1768.1, "engine_ms": 1652.1, "speedup": 1.07,
     "cache_hit_ratio": 0, "node_p50_us": 14.1, "node_p99_us": 36.2},
    {"workload": "grid-homogeneous", "nodes": 100000, "workers": 1,
     "sequential_ms": 956.4, "engine_ms": 151.8, "speedup": 6.3,
     "cache_hit_ratio": 0.99}
  ],
  "update": [
    {"workload": "update-repair", "nodes": 100000, "workers": 1,
     "moved_per_tick": 1001, "ticks": 40, "tick_p50_ms": 4.2, "tick_p99_ms": 9.8,
     "speedup_p50": 3.1},
    {"workload": "update-recompute", "nodes": 100000, "workers": 1,
     "moved_per_tick": 1001, "ticks": 40, "tick_p50_ms": 13.0, "tick_p99_ms": 21.5}
  ]
}`
	skyJSON := `{
  "num_cpu": 8, "gomaxprocs": 4,
  "sizes": [
    {"n": 16, "compute_into_ns_op": 17006, "compute_into_allocs_op": 0},
    {"n": 1024, "compute_into_ns_op": 1597902, "compute_into_allocs_op": 0}
  ]
}`
	if err := os.WriteFile(enginePath, []byte(engineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(skyPath, []byte(skyJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code := run([]string{
		"-append", "-engine", enginePath, "-skyline", skyPath,
		"-trajectory", traj, "-sha", "abc1234", "-ts", "2026-08-07T00:00:00Z",
	}, &out, os.Stderr)
	if code != 0 {
		t.Fatalf("append exit = %d", code)
	}
	if !strings.Contains(out.String(), "appended 6 entries") {
		t.Errorf("append output = %q", out.String())
	}

	f, err := os.Open(traj)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var entries []entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("trajectory line not JSON: %v", err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 6 {
		t.Fatalf("trajectory has %d entries, want 6", len(entries))
	}
	if entries[0].Source != "engine" || entries[0].MS != 1652.1 || entries[0].SHA != "abc1234" {
		t.Errorf("engine entry = %+v", entries[0])
	}
	if entries[0].NodeP99US != 36.2 {
		t.Errorf("engine entry p99 = %g, want 36.2", entries[0].NodeP99US)
	}
	if entries[0].NumCPU != 8 || entries[0].Gomaxprocs != 4 || entries[0].Cores != 0 {
		t.Errorf("engine entry machine fields = %+v", entries[0])
	}
	if entries[2].Workload != "update-repair" || entries[2].MS != 4.2 || entries[2].TickP99MS != 9.8 {
		t.Errorf("update entry = %+v", entries[2])
	}
	if entries[3].Workload != "update-recompute" || entries[3].MS != 13.0 {
		t.Errorf("update entry = %+v", entries[3])
	}
	if entries[4].Source != "skyline" || entries[4].Workload != "compute_into/n=16" {
		t.Errorf("skyline entry = %+v", entries[4])
	}
	if entries[4].NumCPU != 8 || entries[4].Gomaxprocs != 4 {
		t.Errorf("skyline entry machine fields = %+v", entries[4])
	}
	if got, want := entries[4].MS, 17006.0/1e6; got != want {
		t.Errorf("skyline ms = %g, want %g", got, want)
	}

	// Append again (a second run) and check: stable history → pass.
	if code := run([]string{
		"-append", "-engine", enginePath, "-skyline", skyPath,
		"-trajectory", traj, "-sha", "def5678",
	}, io.Discard, os.Stderr); code != 0 {
		t.Fatalf("second append exit = %d", code)
	}
	if code := run([]string{"-check", "-trajectory", traj}, io.Discard, io.Discard); code != 0 {
		t.Fatal("check after identical appends must pass")
	}
}

func TestBadUsage(t *testing.T) {
	if code := run([]string{}, io.Discard, io.Discard); code != 2 {
		t.Errorf("no mode: exit = %d, want 2", code)
	}
	if code := run([]string{"-append", "-check"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("both modes: exit = %d, want 2", code)
	}
	if code := run([]string{"-append"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("append without inputs: exit = %d, want 2", code)
	}
}

// TestAppendSweepReport: a mldcsbench sweep report converts into one
// trajectory entry per cell, keyed per (cores via gomaxprocs, workload
// with contention folded in, workers).
func TestAppendSweepReport(t *testing.T) {
	dir := t.TempDir()
	sweep := filepath.Join(dir, "BENCH_sweep.json")
	const report = `{
	  "num_cpu": 8,
	  "cells": [
	    {"cores": 1, "workers": 1, "workload": "uniform", "contention": 0, "nodes": 5000,
	     "compute_ms": 40, "tick_p50_ms": 1.5, "tick_p99_ms": 3.0,
	     "worker_imbalance": 1.0, "steals": 0, "cache_hit_ratio": 0.1},
	    {"cores": 4, "workers": 4, "workload": "zipf", "contention": 1.2, "nodes": 5000,
	     "compute_ms": 15, "tick_p50_ms": 0.6, "tick_p99_ms": 1.9,
	     "worker_imbalance": 1.8, "steals": 12, "cache_hit_ratio": 0.4}
	  ]
	}`
	if err := os.WriteFile(sweep, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}
	traj := filepath.Join(dir, "traj.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-append", "-sweep", sweep, "-trajectory", traj,
		"-sha", "cafe123", "-ts", "2026-08-07T00:00:00Z"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errb.String())
	}
	es := readEntries(t, traj)
	if len(es) != 2 {
		t.Fatalf("got %d entries, want 2", len(es))
	}
	e := es[1]
	if e.Source != "sweep" || e.Workload != "zipf/c=1.2" {
		t.Errorf("entry key = %s/%s, want sweep/zipf/c=1.2", e.Source, e.Workload)
	}
	if e.Gomaxprocs != 4 || e.NumCPU != 8 || e.Workers != 4 {
		t.Errorf("machine fields = gomaxprocs %d num_cpu %d workers %d", e.Gomaxprocs, e.NumCPU, e.Workers)
	}
	if e.MS != 0.6 || e.TickP99MS != 1.9 || e.ComputeMS != 15 {
		t.Errorf("latency fields = ms %g p99 %g compute %g", e.MS, e.TickP99MS, e.ComputeMS)
	}
	if e.WorkerImbalance != 1.8 || e.Steals != 12 {
		t.Errorf("imbalance fields = %g/%d", e.WorkerImbalance, e.Steals)
	}
	if es[0].key() == es[1].key() {
		t.Error("distinct cells share a trajectory key")
	}

	// The appended rows must be gateable: a second identical append gives
	// every key a baseline, and -check passes.
	if code := run([]string{"-append", "-sweep", sweep, "-trajectory", traj,
		"-sha", "cafe124", "-ts", "2026-08-07T01:00:00Z"}, &out, &errb); code != 0 {
		t.Fatalf("second append: exit = %d\nstderr: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-check", "-trajectory", traj}, &out, &errb); code != 0 {
		t.Fatalf("check: exit = %d\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok sweep/zipf/c=1.2") {
		t.Errorf("sweep key not gated:\n%s", out.String())
	}
}

// readEntries parses every line of a trajectory file.
func readEntries(t *testing.T, path string) []entry {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var entries []entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("trajectory line not JSON: %v", err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return entries
}
