// Backbone demo: build connected dominating sets (the CDS-based broadcast
// backbones of the paper's related work) with the Wu–Li marking process
// and the MIS-based construction, then compare backbone broadcasting
// against per-node forwarding sets.
//
//	go run ./examples/backbone [seed]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	"repro"
)

func main() {
	seed := int64(21)
	if len(os.Args) > 1 {
		s, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = s
	}
	rng := rand.New(rand.NewSource(seed))
	nodes, err := mldcs.PaperDeployment("heterogeneous", 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes\n\n", g.Len())

	fmt.Printf("%-12s %8s %13s %10s %10s\n", "scheme", "backbone", "transmissions", "delivered", "redundant")
	for _, method := range []string{"wuli", "mis"} {
		set, err := mldcs.ConnectedDominatingSet(g, method, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mldcs.BroadcastBackbone(g, 0, set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8d %13d %6d/%-4d %9d\n",
			method+"-cds", len(set), res.Transmissions, res.Delivered, res.Reachable, res.Redundant)
	}
	for _, name := range []string{"skyline", "greedy"} {
		sel, err := mldcs.SelectorByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mldcs.Broadcast(g, 0, sel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8s %13d %6d/%-4d %9d\n",
			name, "—", res.Transmissions, res.Delivered, res.Reachable, res.Redundant)
	}
	flood, err := mldcs.Broadcast(g, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %8s %13d %6d/%-4d %9d\n",
		"flooding", "—", flood.Transmissions, flood.Delivered, flood.Reachable, flood.Redundant)

	fmt.Println()
	fmt.Println("a CDS is a standing backbone: only its members ever relay, so the")
	fmt.Println("per-broadcast cost is fixed by the backbone size, while forwarding")
	fmt.Println("sets (skyline/greedy) are chosen per node from local information.")
}
