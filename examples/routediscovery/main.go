// Route discovery demo: the paper motivates efficient broadcasting with
// route finding. Flood a route request from the center node to several
// far-away destinations under different relaying policies and compare the
// discovery cost (RREQ transmissions) and the route stretch.
//
//	go run ./examples/routediscovery [seed]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	"repro"
)

func main() {
	seed := int64(11)
	if len(os.Args) > 1 {
		s, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = s
	}
	rng := rand.New(rand.NewSource(seed))
	nodes, err := mldcs.PaperDeployment("heterogeneous", 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes; source is node 0 at the center\n\n", g.Len())

	// A few spread-out destinations.
	dests := []int{}
	for d := 1; d < g.Len() && len(dests) < 5; d += g.Len() / 5 {
		dests = append(dests, d)
	}

	policies := []struct {
		name string
		sel  mldcs.Selector
	}{{"flooding", nil}}
	for _, name := range []string{"skyline", "greedy", "repair"} {
		sel, err := mldcs.SelectorByName(name)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, struct {
			name string
			sel  mldcs.Selector
		}{name, sel})
	}

	fmt.Printf("%-10s %6s %8s %6s %9s %8s\n", "policy", "dest", "found", "hops", "optimal", "cost")
	for _, p := range policies {
		for _, dest := range dests {
			r, err := mldcs.DiscoverRoute(g, 0, dest, p.sel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %6d %8v %6d %9d %8d\n",
				p.name, dest, r.Found, r.Hops(), r.Optimal, r.Cost)
		}
		fmt.Println()
	}
	fmt.Println("cost = RREQ transmissions for one discovery flood.")
	fmt.Println("skyline may miss routes in heterogeneous networks (the §5.2 drawback);")
	fmt.Println("greedy and repair always find a route when one exists, at a fraction")
	fmt.Println("of flooding's cost.")
}
