// Dynamic topology demo: a mobile node walks across the network while we
// maintain the graph incrementally (MoveNode patches adjacency instead of
// rebuilding) and watch the source's skyline forwarding set react to each
// topology change.
//
//	go run ./examples/dynamictopology
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(33))
	nodes, err := mldcs.PaperDeployment("heterogeneous", 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		log.Fatal(err)
	}
	sky, err := mldcs.SelectorByName("skyline")
	if err != nil {
		log.Fatal(err)
	}

	// Pick a walker: the highest-ID node, sent marching through the
	// source's neighborhood.
	walker := g.Len() - 1
	src := g.Node(0).Pos
	fmt.Printf("network: %d nodes; walker is node %d\n", g.Len(), walker)
	fmt.Printf("%6s %28s %9s %s\n", "step", "walker position", "degree(0)", "skyline forwarding set of node 0")

	prev := ""
	for step := 0; step <= 10; step++ {
		// March the walker along a line that passes right through the
		// source's position.
		t := float64(step)/10*4 - 2 // -2 .. +2
		pos := mldcs.Pt(src.X+t, src.Y+0.3*t)
		if err := g.MoveNode(walker, pos); err != nil {
			log.Fatal(err)
		}
		set, err := mldcs.SelectForwarders(g, 0, sky)
		if err != nil {
			log.Fatal(err)
		}
		cur := fmt.Sprint(set)
		marker := " "
		if cur != prev {
			marker = "*" // the forwarding set changed this step
		}
		fmt.Printf("%5d%s (%6.2f, %6.2f) %16d   %v\n",
			step, marker, pos.X, pos.Y, g.Degree(0), set)
		prev = cur
	}
	fmt.Println()
	fmt.Println("each step is one incremental MoveNode (~100× cheaper than a rebuild);")
	fmt.Println("* marks steps where the source's minimum local disk cover set changed.")
}
