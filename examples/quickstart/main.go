// Quickstart: compute the minimum local disk cover set of a node's
// neighborhood and inspect the skyline it is derived from.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A node ("the hub") with transmission radius 1.2, and six 1-hop
	// neighbors with heterogeneous radii. Every neighbor is within
	// min(r_hub, r_i) of the hub — the paper's bidirectional link model.
	hub := mldcs.NewDisk(0, 0, 1.2)
	neighbors := []mldcs.Disk{
		mldcs.NewDisk(0.9, 0.2, 1.6),   // 0: pokes far out east
		mldcs.NewDisk(-0.4, 0.8, 1.3),  // 1: northwest
		mldcs.NewDisk(-0.8, -0.3, 1.1), // 2: west
		mldcs.NewDisk(0.2, -0.9, 1.4),  // 3: south
		mldcs.NewDisk(0.1, 0.1, 1.0),   // 4: small, near the hub — likely covered
		mldcs.NewDisk(0.3, 0.4, 1.0),   // 5: small — likely covered
	}

	// The minimum local disk cover set (Theorem 3: the skyline set).
	// Indices: 0 is the hub itself, i ≥ 1 is neighbors[i-1].
	cover, err := mldcs.CoverSet(hub, neighbors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum local disk cover set: %v (%d of %d disks)\n",
		cover, len(cover), len(neighbors)+1)

	// The forwarding set: the neighbors the hub asks to relay a broadcast.
	// The hub's own arcs are already covered by its original transmission.
	fwd, err := mldcs.ForwardingSet(hub, neighbors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forwarding set (neighbor indices): %v\n", fwd)

	// The skyline itself: the boundary of the union of all seven disks,
	// as arcs around the hub. Each arc names the disk that forms that
	// stretch of the boundary.
	all := append([]mldcs.Disk{hub}, neighbors...)
	sl, err := mldcs.ComputeSkyline(hub.C, all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skyline has %d arcs:\n", sl.ArcCount())
	for _, a := range sl {
		fmt.Printf("  %v\n", a)
	}

	// Sanity: by Theorem 3 the cover is exactly the set of disks that
	// appear in the skyline.
	fmt.Printf("skyline set: %v (must equal the cover set)\n", sl.Set())
}
