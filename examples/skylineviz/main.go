// Skyline visualization: generate a random heterogeneous neighborhood,
// compute its skyline, and write two SVGs — the local disk set with the
// skyline arcs highlighted, and a whole deployment with the source's
// forwarding set marked.
//
//	go run ./examples/skylineviz [outdir]
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	outDir := "."
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	rng := rand.New(rand.NewSource(42))

	// 1. A random local disk set and its skyline.
	hub := mldcs.NewDisk(0, 0, 1.5)
	disks := []mldcs.Disk{hub}
	for i := 0; i < 14; i++ {
		r := 1 + rng.Float64()
		maxDist := math.Min(r, hub.R)
		dist := rng.Float64() * maxDist * 0.999
		theta := rng.Float64() * 2 * math.Pi
		disks = append(disks, mldcs.Disk{
			C: mldcs.Pt(dist*math.Cos(theta), dist*math.Sin(theta)),
			R: r,
		})
	}
	sl, err := mldcs.ComputeSkyline(hub.C, disks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local set: %d disks, skyline set %v (%d arcs)\n",
		len(disks), sl.Set(), sl.ArcCount())
	localPath := filepath.Join(outDir, "localset.svg")
	if err := os.WriteFile(localPath, []byte(mldcs.RenderLocalSetSVG(hub.C, disks, sl)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", localPath)

	// 2. A full paper deployment with the source's skyline forwarding set.
	nodes, err := mldcs.PaperDeployment("heterogeneous", 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := mldcs.SelectorByName("skyline")
	if err != nil {
		log.Fatal(err)
	}
	set, err := mldcs.SelectForwarders(g, 0, sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d nodes, source degree %d, forwarding set %v\n",
		g.Len(), g.Degree(0), set)
	netPath := filepath.Join(outDir, "network.svg")
	if err := os.WriteFile(netPath, []byte(mldcs.RenderNetworkSVG(g, 0, set)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", netPath)
}
