// Heterogeneous drawback demo: reconstruct the paper's Figure 5.6
// configuration and watch the skyline forwarding set fail to cover the
// 2-hop neighborhood — then fix it with the repair extension.
//
// The setup: source u has neighbors u1, u2, u3. u3's transmission disk is
// so large it covers the entire local union, so the minimum local disk
// cover set is {u3} alone. But the 2-hop nodes u4 and u5, although inside
// u3's disk, have radii too small to reach back to u3 — under the
// bidirectional link model they are NOT u3's neighbors, so a broadcast
// relayed only by u3 never reaches them. The optimal forwarding set is
// {u1, u2}.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	nodes := []mldcs.Node{
		{ID: 0, Pos: mldcs.Pt(0, 0), Radius: 1},         // u   (source)
		{ID: 1, Pos: mldcs.Pt(0.8, 0.3), Radius: 1},     // u1
		{ID: 2, Pos: mldcs.Pt(0.8, -0.3), Radius: 1},    // u2
		{ID: 3, Pos: mldcs.Pt(0.5, 0), Radius: 2.5},     // u3  (dominating disk)
		{ID: 4, Pos: mldcs.Pt(1.7, 0.3), Radius: 0.95},  // u4  (2-hop via u1)
		{ID: 5, Pos: mldcs.Pt(1.7, -0.3), Radius: 0.95}, // u5  (2-hop via u2)
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("topology (bidirectional links):")
	for u := 0; u < g.Len(); u++ {
		fmt.Printf("  u%d (r=%.2f): neighbors %v\n", u, g.Node(u).Radius, g.Neighbors(u))
	}
	fmt.Printf("2-hop neighbors of the source: %v\n\n", g.TwoHop(0))

	for _, name := range []string{"skyline", "optimal", "repair"} {
		sel, err := mldcs.SelectorByName(name)
		if err != nil {
			log.Fatal(err)
		}
		set, err := mldcs.SelectForwarders(g, 0, sel)
		if err != nil {
			log.Fatal(err)
		}
		cov := mldcs.TwoHopCoverage(g, 0, set)
		fmt.Printf("%-8s forwarding set %v — 2-hop coverage %.0f%%", name, set, cov*100)
		if missed := mldcs.UncoveredTwoHop(g, 0, set); len(missed) > 0 {
			fmt.Printf(", strands %v", missed)
		}
		fmt.Println()

		res, err := mldcs.Broadcast(g, 0, sel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("         broadcast delivers %d of %d reachable nodes (%d transmissions)\n",
			res.Delivered, res.Reachable, res.Transmissions)
	}

	fmt.Println()
	fmt.Println("skyline uses only 1-hop information, so it cannot see that u4/u5")
	fmt.Println("cannot hear u3 back — the paper's §5.2 open problem. The repair")
	fmt.Println("extension keeps the skyline base and patches it with 2-hop data.")
}
