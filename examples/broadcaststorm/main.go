// Broadcast storm demo: deploy one of the paper's random networks and
// broadcast a message network-wide under four relaying policies, showing
// how forwarding sets tame the storm (§1.2) — and how the plain skyline
// policy can strand nodes in heterogeneous networks (§5.2).
//
//	go run ./examples/broadcaststorm [seed]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	"repro"
)

func main() {
	seed := int64(7)
	if len(os.Args) > 1 {
		s, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = s
	}

	for _, model := range []string{"homogeneous", "heterogeneous"} {
		nodes, err := mldcs.PaperDeployment(model, 10, rand.New(rand.NewSource(seed)))
		if err != nil {
			log.Fatal(err)
		}
		g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s network: %d nodes, source degree %d\n",
			model, g.Len(), g.Degree(0))
		fmt.Printf("%-10s %13s %10s %10s %7s\n",
			"policy", "transmissions", "delivered", "redundant", "maxhop")

		// nil selector = blind flooding.
		policies := []struct {
			name string
			sel  mldcs.Selector
		}{{"flooding", nil}}
		for _, name := range []string{"skyline", "greedy", "repair"} {
			sel, err := mldcs.SelectorByName(name)
			if err != nil {
				log.Fatal(err)
			}
			policies = append(policies, struct {
				name string
				sel  mldcs.Selector
			}{name, sel})
		}

		for _, p := range policies {
			res, err := mldcs.Broadcast(g, 0, p.sel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %13d %6d/%-4d %10d %7d\n",
				p.name, res.Transmissions, res.Delivered, res.Reachable,
				res.Redundant, res.MaxHop)
		}
		fmt.Println()
	}
	fmt.Println("flooding: every node transmits once — maximal redundancy.")
	fmt.Println("skyline:  1-hop-information relays; can strand nodes in heterogeneous networks.")
	fmt.Println("greedy:   2-hop set-cover relays; always delivers.")
	fmt.Println("repair:   skyline base + 2-hop patching; always delivers.")
}
