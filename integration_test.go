package mldcs_test

// End-to-end integration: one test that drives the full pipeline the way
// the paper's evaluation does — deploy, build the graph, select forwarding
// sets with every algorithm, verify the MLDCS semantics against the
// geometry, broadcast, and discover routes — asserting the cross-layer
// invariants that individual package tests cannot see together.

import (
	"math/rand"
	"testing"

	"repro"
)

func TestEndToEndPipeline(t *testing.T) {
	for _, model := range []string{"homogeneous", "heterogeneous"} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			nodes, err := mldcs.PaperDeployment(model, 10, rng)
			if err != nil {
				t.Fatal(err)
			}
			g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
			if err != nil {
				t.Fatal(err)
			}

			// 1. The skyline forwarding set of the source must equal the
			// geometric MLDCS of its neighborhood.
			skySel, err := mldcs.SelectorByName("skyline")
			if err != nil {
				t.Fatal(err)
			}
			skySet, err := mldcs.SelectForwarders(g, 0, skySel)
			if err != nil {
				t.Fatal(err)
			}
			hub := g.Node(0).Disk()
			nbrIDs := g.Neighbors(0)
			nbrDisks := make([]mldcs.Disk, len(nbrIDs))
			for i, id := range nbrIDs {
				nbrDisks[i] = g.Node(id).Disk()
			}
			fromGeometry, err := mldcs.ForwardingSet(hub, nbrDisks)
			if err != nil {
				t.Fatal(err)
			}
			asIDs := make([]int, len(fromGeometry))
			for i, idx := range fromGeometry {
				asIDs[i] = nbrIDs[idx]
			}
			if len(asIDs) != len(skySet) {
				t.Fatalf("%s seed %d: selector %v vs geometric MLDCS %v", model, seed, skySet, asIDs)
			}
			for i := range asIDs {
				if asIDs[i] != skySet[i] {
					t.Fatalf("%s seed %d: selector %v vs geometric MLDCS %v", model, seed, skySet, asIDs)
				}
			}

			// 2. The union of the forwarding disks (plus the hub's) must
			// cover the union of all neighborhood disks: compare exact
			// areas through the public API.
			all := append([]mldcs.Disk{hub}, nbrDisks...)
			fullArea, err := mldcs.UnionArea(hub.C, all)
			if err != nil {
				t.Fatal(err)
			}
			coverIdx, err := mldcs.CoverSet(hub, nbrDisks)
			if err != nil {
				t.Fatal(err)
			}
			coverDisks := make([]mldcs.Disk, 0, len(coverIdx))
			for _, i := range coverIdx {
				coverDisks = append(coverDisks, all[i])
			}
			coverArea, err := mldcs.UnionArea(hub.C, coverDisks)
			if err != nil {
				t.Fatal(err)
			}
			if diff := fullArea - coverArea; diff > 1e-6*fullArea || diff < -1e-6*fullArea {
				t.Fatalf("%s seed %d: cover area %.9f != full area %.9f", model, seed, coverArea, fullArea)
			}

			// 3. Every cover-guaranteeing selector yields a complete
			// broadcast; transmissions are ordered flooding ≥ repair ≥ ...
			// not strictly, but all are ≤ flooding.
			flood, err := mldcs.Broadcast(g, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if flood.DeliveryRatio() != 1 {
				t.Fatalf("%s seed %d: flooding incomplete", model, seed)
			}
			for _, name := range []string{"greedy", "repair"} {
				sel, err := mldcs.SelectorByName(name)
				if err != nil {
					t.Fatal(err)
				}
				res, err := mldcs.Broadcast(g, 0, sel)
				if err != nil {
					t.Fatal(err)
				}
				if res.DeliveryRatio() != 1 {
					t.Fatalf("%s seed %d: %s broadcast incomplete", model, seed, name)
				}
				if res.Transmissions > flood.Transmissions {
					t.Fatalf("%s seed %d: %s uses more transmissions than flooding", model, seed, name)
				}
				if res.TxEnergy(g) > flood.TxEnergy(g) {
					t.Fatalf("%s seed %d: %s uses more energy than flooding", model, seed, name)
				}
			}

			// 4. Route discovery through the greedy policy finds a valid
			// route to every reachable node probed.
			grd, _ := mldcs.SelectorByName("greedy")
			for dest := 1; dest < g.Len(); dest += 97 {
				r, err := mldcs.DiscoverRoute(g, 0, dest, grd)
				if err != nil {
					t.Fatal(err)
				}
				if r.Found {
					if err := r.Validate(g, 0, dest); err != nil {
						t.Fatalf("%s seed %d: %v", model, seed, err)
					}
				}
			}

			// 5. In homogeneous networks the skyline broadcast must also be
			// complete (no §5.2 drawback there).
			if model == "homogeneous" {
				res, err := mldcs.Broadcast(g, 0, skySel)
				if err != nil {
					t.Fatal(err)
				}
				if res.DeliveryRatio() != 1 {
					t.Fatalf("seed %d: homogeneous skyline broadcast incomplete", seed)
				}
			}
		}
	}
}

// The experiment layer and the direct API must agree: Fig5.1's flooding
// curve equals the measured mean source degree.
func TestExperimentConsistency(t *testing.T) {
	cfg := mldcs.ExperimentConfig{Replications: 20, Seed: 5, Workers: 4, Degrees: []float64{8}}
	fig, err := mldcs.RunExperiment("fig5.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var floodMean float64
	for _, s := range fig.Series {
		if s.Label == "flooding" {
			floodMean = s.Y[0]
		}
	}
	sum := 0.0
	for rep := 0; rep < cfg.Replications; rep++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
		nodes, err := mldcs.PaperDeployment("homogeneous", 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(g.Degree(0))
	}
	want := sum / float64(cfg.Replications)
	if diff := floodMean - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fig5.1 flooding mean %v != directly measured %v", floodMean, want)
	}
}
